(** CRC-32 (IEEE) checksums for snapshot integrity. *)

(** [bytes ?crc buf off len] checksums a byte range.  Pass the result of a
    previous call as [crc] to checksum data incrementally. *)
val bytes : ?crc:int -> Bytes.t -> int -> int -> int

val string : ?crc:int -> string -> int
