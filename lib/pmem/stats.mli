(** Instrumentation counters for a persistent-memory region. *)

type t = {
  mutable pwbs : int;        (** persist write-backs issued *)
  mutable pfences : int;     (** persist fences issued *)
  mutable psyncs : int;      (** persist syncs issued *)
  mutable loads : int;       (** word/blob loads from the region *)
  mutable stores : int;      (** word stores to the region *)
  mutable nvm_bytes : int;   (** every byte stored into the region *)
  mutable user_bytes : int;  (** payload bytes credited by the PTM *)
  mutable load_bytes : int;  (** every byte loaded from the region *)
  mutable copy_calls : int;  (** region-internal copies (replication, recovery) *)
  mutable replicated_bytes : int; (** bytes moved by region-internal copies *)
  mutable commits : int;     (** durably committed transactions (ticked by the engine) *)
  mutable delay_ns : int;    (** virtual latency injected by the fence profile *)
  mutable crashes : int;     (** simulated crashes *)
  mutable tx_aborts : int;   (** transactions aborted and rolled back (ticked by the PTM) *)
  mutable scrubbed_lines : int;     (** lines whose sidecar CRC a scrub verified *)
  mutable repaired_lines : int;     (** bad lines a scrub rewrote from their twin *)
  mutable unrepairable_lines : int; (** bad lines no twin could repair *)
  mutable media_errors : int;       (** loads that hit a line failing its CRC *)
  mutable intent_prepares : int;    (** cross-shard intent records made durable (one per participant mirror, or per centralized intent) *)
  mutable coordinator_flips : int;  (** cross-shard COMMIT flips (the batch durability point) *)
  mutable lazy_clears : int;        (** intent records reclaimed lazily (piggybacked on a later protocol transaction) *)
  mutable rolled_forward : int;     (** intents resolved as committed during reconciliation *)
  mutable rolled_back : int;        (** intents resolved by presumed-abort rollback (recovery or runtime abort) *)
  mutable chunks_written : int;      (** mirror payload chunks made durable (incl. the single-chunk fast path) *)
  mutable chunks_spilled : int;      (** oversized undo images spilled out of the inline payload *)
  mutable overload_rejections : int; (** batches refused by per-shard admission control *)
  mutable clear_flushes : int;       (** dedicated lazy-CLEAR flush transactions (threshold or explicit) *)
  mutable migrations_started : int;   (** shard split/merge intents made durable *)
  mutable migrations_resumed : int;   (** in-flight migrations picked up by recovery *)
  mutable migrations_completed : int; (** migrations whose epoch flip committed *)
  mutable keys_migrated : int;        (** keys inserted into a migration target *)
  mutable double_reads : int;         (** reads that fell back to the migration source *)
  mutable health_degraded : int;     (** shard transitions into Degraded (read-only) *)
  mutable health_quarantined : int;  (** shard transitions into Quarantined *)
  mutable health_repaired : int;     (** shard transitions back to Healthy *)
  mutable repair_attempts : int;     (** scrub/reopen attempts by the repair driver *)
  mutable repair_snapshot_restores : int; (** shards restored from a snapshot file *)
  mutable shards_evacuated : int;    (** dying shards whose keys were evacuated *)
  mutable keys_evacuated : int;      (** keys copied off a dying shard *)
  mutable unavailable_rejections : int; (** operations refused with Shard_unavailable *)
  mutable group_commits : int;   (** coalesced engine rounds run by the group-commit front-end *)
  mutable group_size_sum : int;  (** logical transactions settled across those rounds *)
  mutable group_size_max : int;  (** largest single coalesced group (summed by [aggregate]) *)
  mutable fences_saved : int;    (** fence sequences avoided: logical txs settled minus engine rounds paid *)
  mutable merged_intents : int;  (** cross-shard batches that shared another batch's intent record *)
  mutable async_acks : int;      (** operations acknowledged at enqueue (Async mode) *)
  mutable flushes : int;         (** explicit group-commit flushes (drain-everything barriers) *)
}

val create : unit -> t
val reset : t -> unit

(** Independent copy of the current counter values. *)
val snapshot : t -> t

(** Counters accumulated between [past] and [now]. *)
val since : now:t -> past:t -> t

(** Field-wise sum of the given counter records, as a fresh independent
    record — the aggregate view of a multi-region (sharded) store. *)
val aggregate : t list -> t

(** [pfences + psyncs] — the persistence-fence count the paper reports. *)
val fences : t -> int

(** [nvm_bytes / user_bytes]; [nan] when no user bytes were credited. *)
val write_amplification : t -> float

(** Per-committed-transaction rates; [nan] when no transaction committed
    in the counted window. *)
val pwbs_per_tx : t -> float

val copies_per_tx : t -> float
val replicated_bytes_per_tx : t -> float

val pp : Format.formatter -> t -> unit
