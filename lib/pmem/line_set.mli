(** Tracking of non-persisted cache lines inside a simulated region.

    Lines move CLEAN -> DIRTY (a store landed in the line) -> PENDING (a pwb
    was issued for the line) -> CLEAN (a fence persisted it, or a crash
    resolved its fate). *)

type t

val create : lines:int -> t

(** Record a store into [line]. *)
val set_dirty : t -> int -> unit

(** Record a pwb of [line]. *)
val set_pending : t -> int -> unit

(** Mark [line] clean (synchronously persisted by an ordered pwb). *)
val set_clean : t -> int -> unit

(** True when [line] has no un-persisted store in flight: its volatile and
    persistent copies agree (modulo media faults). *)
val is_clean : t -> int -> bool

(** [flush_pending t f] calls [f line] for every pending line, marking it
    clean; dirty lines are kept for later. *)
val flush_pending : t -> (int -> unit) -> unit

(** [drain_all t f] calls [f line was_pending] for every non-clean line and
    clears the whole set.  Used when simulating a crash, where both pending
    and merely-dirty (evictable) lines may or may not have reached the
    medium. *)
val drain_all : t -> (int -> bool -> unit) -> unit

(** Number of non-clean lines. *)
val cardinal : t -> int
