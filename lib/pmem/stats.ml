(* Instrumentation counters for a persistent-memory region.

   [nvm_bytes] counts every byte stored into the region (user data, logs,
   allocator metadata, twin-copy replication), while [user_bytes] is
   credited explicitly by a PTM for the payload the user asked to store.
   Write amplification is [nvm_bytes / user_bytes].

   [copy_calls]/[replicated_bytes] break out the region-internal copies
   (twin-copy replication plus recovery), and [commits] is ticked by a PTM
   engine once per durably committed transaction, which is what makes
   per-transaction rates such as [pwbs_per_tx] derivable from raw counters.

   [delay_ns] accumulates the virtual latency injected by the active fence
   profile; benchmark harnesses add it to wall-clock time so that emulated
   STT-RAM / PCM latencies are deterministic rather than spin-waited. *)

type t = {
  mutable pwbs : int;
  mutable pfences : int;
  mutable psyncs : int;
  mutable loads : int;
  mutable stores : int;
  mutable nvm_bytes : int;
  mutable user_bytes : int;
  mutable load_bytes : int;
  mutable copy_calls : int;
  mutable replicated_bytes : int;
  mutable commits : int;
  mutable delay_ns : int;
  mutable crashes : int;
  mutable tx_aborts : int;
  mutable scrubbed_lines : int;
  mutable repaired_lines : int;
  mutable unrepairable_lines : int;
  mutable media_errors : int;
  mutable intent_prepares : int;
  mutable coordinator_flips : int;
  mutable lazy_clears : int;
  mutable rolled_forward : int;
  mutable rolled_back : int;
  mutable chunks_written : int;
  mutable chunks_spilled : int;
  mutable overload_rejections : int;
  mutable clear_flushes : int;
  mutable migrations_started : int;
  mutable migrations_resumed : int;
  mutable migrations_completed : int;
  mutable keys_migrated : int;
  mutable double_reads : int;
  mutable health_degraded : int;
  mutable health_quarantined : int;
  mutable health_repaired : int;
  mutable repair_attempts : int;
  mutable repair_snapshot_restores : int;
  mutable shards_evacuated : int;
  mutable keys_evacuated : int;
  mutable unavailable_rejections : int;
  mutable group_commits : int;
  mutable group_size_sum : int;
  mutable group_size_max : int;
  mutable fences_saved : int;
  mutable merged_intents : int;
  mutable async_acks : int;
  mutable flushes : int;
}

let create () =
  { pwbs = 0; pfences = 0; psyncs = 0; loads = 0; stores = 0;
    nvm_bytes = 0; user_bytes = 0; load_bytes = 0; copy_calls = 0;
    replicated_bytes = 0; commits = 0; delay_ns = 0; crashes = 0;
    tx_aborts = 0; scrubbed_lines = 0; repaired_lines = 0;
    unrepairable_lines = 0; media_errors = 0; intent_prepares = 0;
    coordinator_flips = 0; lazy_clears = 0; rolled_forward = 0;
    rolled_back = 0; chunks_written = 0; chunks_spilled = 0;
    overload_rejections = 0; clear_flushes = 0; migrations_started = 0;
    migrations_resumed = 0; migrations_completed = 0; keys_migrated = 0;
    double_reads = 0; health_degraded = 0; health_quarantined = 0;
    health_repaired = 0; repair_attempts = 0; repair_snapshot_restores = 0;
    shards_evacuated = 0; keys_evacuated = 0; unavailable_rejections = 0;
    group_commits = 0; group_size_sum = 0; group_size_max = 0;
    fences_saved = 0; merged_intents = 0; async_acks = 0; flushes = 0 }

let reset t =
  t.pwbs <- 0; t.pfences <- 0; t.psyncs <- 0; t.loads <- 0; t.stores <- 0;
  t.nvm_bytes <- 0; t.user_bytes <- 0; t.load_bytes <- 0; t.copy_calls <- 0;
  t.replicated_bytes <- 0; t.commits <- 0; t.delay_ns <- 0; t.crashes <- 0;
  t.tx_aborts <- 0; t.scrubbed_lines <- 0; t.repaired_lines <- 0;
  t.unrepairable_lines <- 0; t.media_errors <- 0; t.intent_prepares <- 0;
  t.coordinator_flips <- 0; t.lazy_clears <- 0; t.rolled_forward <- 0;
  t.rolled_back <- 0; t.chunks_written <- 0; t.chunks_spilled <- 0;
  t.overload_rejections <- 0; t.clear_flushes <- 0;
  t.migrations_started <- 0; t.migrations_resumed <- 0;
  t.migrations_completed <- 0; t.keys_migrated <- 0; t.double_reads <- 0;
  t.health_degraded <- 0; t.health_quarantined <- 0; t.health_repaired <- 0;
  t.repair_attempts <- 0; t.repair_snapshot_restores <- 0;
  t.shards_evacuated <- 0; t.keys_evacuated <- 0;
  t.unavailable_rejections <- 0;
  t.group_commits <- 0; t.group_size_sum <- 0; t.group_size_max <- 0;
  t.fences_saved <- 0; t.merged_intents <- 0; t.async_acks <- 0;
  t.flushes <- 0

let snapshot t = { t with pwbs = t.pwbs }

(* Counters accumulated between [past] and [now]. *)
let since ~now ~past =
  { pwbs = now.pwbs - past.pwbs;
    pfences = now.pfences - past.pfences;
    psyncs = now.psyncs - past.psyncs;
    loads = now.loads - past.loads;
    stores = now.stores - past.stores;
    nvm_bytes = now.nvm_bytes - past.nvm_bytes;
    user_bytes = now.user_bytes - past.user_bytes;
    load_bytes = now.load_bytes - past.load_bytes;
    copy_calls = now.copy_calls - past.copy_calls;
    replicated_bytes = now.replicated_bytes - past.replicated_bytes;
    commits = now.commits - past.commits;
    delay_ns = now.delay_ns - past.delay_ns;
    crashes = now.crashes - past.crashes;
    tx_aborts = now.tx_aborts - past.tx_aborts;
    scrubbed_lines = now.scrubbed_lines - past.scrubbed_lines;
    repaired_lines = now.repaired_lines - past.repaired_lines;
    unrepairable_lines = now.unrepairable_lines - past.unrepairable_lines;
    media_errors = now.media_errors - past.media_errors;
    intent_prepares = now.intent_prepares - past.intent_prepares;
    coordinator_flips = now.coordinator_flips - past.coordinator_flips;
    lazy_clears = now.lazy_clears - past.lazy_clears;
    rolled_forward = now.rolled_forward - past.rolled_forward;
    rolled_back = now.rolled_back - past.rolled_back;
    chunks_written = now.chunks_written - past.chunks_written;
    chunks_spilled = now.chunks_spilled - past.chunks_spilled;
    overload_rejections = now.overload_rejections - past.overload_rejections;
    clear_flushes = now.clear_flushes - past.clear_flushes;
    migrations_started = now.migrations_started - past.migrations_started;
    migrations_resumed = now.migrations_resumed - past.migrations_resumed;
    migrations_completed =
      now.migrations_completed - past.migrations_completed;
    keys_migrated = now.keys_migrated - past.keys_migrated;
    double_reads = now.double_reads - past.double_reads;
    health_degraded = now.health_degraded - past.health_degraded;
    health_quarantined = now.health_quarantined - past.health_quarantined;
    health_repaired = now.health_repaired - past.health_repaired;
    repair_attempts = now.repair_attempts - past.repair_attempts;
    repair_snapshot_restores =
      now.repair_snapshot_restores - past.repair_snapshot_restores;
    shards_evacuated = now.shards_evacuated - past.shards_evacuated;
    keys_evacuated = now.keys_evacuated - past.keys_evacuated;
    unavailable_rejections =
      now.unavailable_rejections - past.unavailable_rejections;
    group_commits = now.group_commits - past.group_commits;
    group_size_sum = now.group_size_sum - past.group_size_sum;
    group_size_max = now.group_size_max - past.group_size_max;
    fences_saved = now.fences_saved - past.fences_saved;
    merged_intents = now.merged_intents - past.merged_intents;
    async_acks = now.async_acks - past.async_acks;
    flushes = now.flushes - past.flushes }

(* Field-wise sum, as a fresh independent record: the cross-shard view of
   a store whose shards each meter their own region. *)
let aggregate ts =
  let a = create () in
  List.iter
    (fun t ->
      a.pwbs <- a.pwbs + t.pwbs;
      a.pfences <- a.pfences + t.pfences;
      a.psyncs <- a.psyncs + t.psyncs;
      a.loads <- a.loads + t.loads;
      a.stores <- a.stores + t.stores;
      a.nvm_bytes <- a.nvm_bytes + t.nvm_bytes;
      a.user_bytes <- a.user_bytes + t.user_bytes;
      a.load_bytes <- a.load_bytes + t.load_bytes;
      a.copy_calls <- a.copy_calls + t.copy_calls;
      a.replicated_bytes <- a.replicated_bytes + t.replicated_bytes;
      a.commits <- a.commits + t.commits;
      a.delay_ns <- a.delay_ns + t.delay_ns;
      a.crashes <- a.crashes + t.crashes;
      a.tx_aborts <- a.tx_aborts + t.tx_aborts;
      a.scrubbed_lines <- a.scrubbed_lines + t.scrubbed_lines;
      a.repaired_lines <- a.repaired_lines + t.repaired_lines;
      a.unrepairable_lines <- a.unrepairable_lines + t.unrepairable_lines;
      a.media_errors <- a.media_errors + t.media_errors;
      a.intent_prepares <- a.intent_prepares + t.intent_prepares;
      a.coordinator_flips <- a.coordinator_flips + t.coordinator_flips;
      a.lazy_clears <- a.lazy_clears + t.lazy_clears;
      a.rolled_forward <- a.rolled_forward + t.rolled_forward;
      a.rolled_back <- a.rolled_back + t.rolled_back;
      a.chunks_written <- a.chunks_written + t.chunks_written;
      a.chunks_spilled <- a.chunks_spilled + t.chunks_spilled;
      a.overload_rejections <- a.overload_rejections + t.overload_rejections;
      a.clear_flushes <- a.clear_flushes + t.clear_flushes;
      a.migrations_started <- a.migrations_started + t.migrations_started;
      a.migrations_resumed <- a.migrations_resumed + t.migrations_resumed;
      a.migrations_completed <-
        a.migrations_completed + t.migrations_completed;
      a.keys_migrated <- a.keys_migrated + t.keys_migrated;
      a.double_reads <- a.double_reads + t.double_reads;
      a.health_degraded <- a.health_degraded + t.health_degraded;
      a.health_quarantined <- a.health_quarantined + t.health_quarantined;
      a.health_repaired <- a.health_repaired + t.health_repaired;
      a.repair_attempts <- a.repair_attempts + t.repair_attempts;
      a.repair_snapshot_restores <-
        a.repair_snapshot_restores + t.repair_snapshot_restores;
      a.shards_evacuated <- a.shards_evacuated + t.shards_evacuated;
      a.keys_evacuated <- a.keys_evacuated + t.keys_evacuated;
      a.unavailable_rejections <-
        a.unavailable_rejections + t.unavailable_rejections;
      a.group_commits <- a.group_commits + t.group_commits;
      a.group_size_sum <- a.group_size_sum + t.group_size_sum;
      (* summed, not maxed: keeps [since (aggregate [a; a]) a = a] and so
         the catch-all audit; a per-shard max stays meaningful because
         each shard meters its own region *)
      a.group_size_max <- a.group_size_max + t.group_size_max;
      a.fences_saved <- a.fences_saved + t.fences_saved;
      a.merged_intents <- a.merged_intents + t.merged_intents;
      a.async_acks <- a.async_acks + t.async_acks;
      a.flushes <- a.flushes + t.flushes)
    ts;
  a

let fences t = t.pfences + t.psyncs

let write_amplification t =
  if t.user_bytes = 0 then nan
  else float_of_int t.nvm_bytes /. float_of_int t.user_bytes

let per_commit count t =
  if t.commits = 0 then nan
  else float_of_int count /. float_of_int t.commits

let pwbs_per_tx t = per_commit t.pwbs t
let copies_per_tx t = per_commit t.copy_calls t
let replicated_bytes_per_tx t = per_commit t.replicated_bytes t

let pp ppf t =
  Format.fprintf ppf
    "pwb=%d pfence=%d psync=%d loads=%d stores=%d nvm=%dB user=%dB \
     loaded=%dB copies=%d replicated=%dB commits=%d amp=%.2f delay=%dns \
     crashes=%d aborts=%d scrubbed=%d repaired=%d unrepairable=%d \
     media_errors=%d prepares=%d flips=%d lazy_clears=%d fwd=%d back=%d \
     chunks=%d spilled=%d overloads=%d clear_flushes=%d \
     migrations=%d/%d/%d keys_migrated=%d double_reads=%d \
     health=%d/%d/%d repair_attempts=%d restores=%d evacuated=%d/%dkeys \
     unavailable=%d groups=%d group_size=%d/max%d fences_saved=%d \
     merged_intents=%d async_acks=%d group_flushes=%d"
    t.pwbs t.pfences t.psyncs t.loads t.stores t.nvm_bytes t.user_bytes
    t.load_bytes t.copy_calls t.replicated_bytes t.commits
    (write_amplification t) t.delay_ns t.crashes t.tx_aborts
    t.scrubbed_lines t.repaired_lines t.unrepairable_lines t.media_errors
    t.intent_prepares t.coordinator_flips t.lazy_clears t.rolled_forward
    t.rolled_back t.chunks_written t.chunks_spilled t.overload_rejections
    t.clear_flushes t.migrations_started t.migrations_resumed
    t.migrations_completed t.keys_migrated t.double_reads
    t.health_degraded t.health_quarantined t.health_repaired
    t.repair_attempts t.repair_snapshot_restores t.shards_evacuated
    t.keys_evacuated t.unavailable_rejections t.group_commits
    t.group_size_sum t.group_size_max t.fences_saved t.merged_intents
    t.async_acks t.flushes
