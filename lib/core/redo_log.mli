(** Volatile redo log: modified (offset, length) ranges of the current
    transaction (§4.7).  Stored in DRAM, never persisted, bounded by a
    configurable entry capacity. *)

type t

(** Raised by {!add} when the entry capacity is exhausted — strictly
    before the range is recorded, so the log still covers exactly the
    stores already applied and the transaction can be rolled back.  A
    recoverable resource-exhaustion event, not a crash. *)
exception Overflow of { capacity : int }

val create : ?capacity:int -> unit -> t
val clear : t -> unit

val capacity : t -> int

(** Adjust the entry cap (takes effect on the next {!add}). *)
val set_capacity : t -> int -> unit

(** Record a modified range; 8-byte entries are deduplicated.  Raises
    {!Overflow} at capacity. *)
val add : t -> off:int -> len:int -> unit

val iter : t -> (off:int -> len:int -> unit) -> unit

(** Merge the logged ranges, in place, into maximal sorted intervals:
    after [coalesce], the entries are sorted by offset and pairwise
    neither overlapping nor adjacent, and cover exactly the union of the
    ranges added since the last {!clear}. *)
val coalesce : t -> unit
val entries : t -> int
val is_empty : t -> bool

(** Total bytes covered by the logged ranges (duplicates from blob stores
    counted as appended). *)
val bytes : t -> int
