(* RomulusLR (§5.3): the twin-copy engine composed with the Left-Right
   universal construct.  Read-only transactions are wait-free: they
   arrive on a read indicator and read whichever copy the control variable
   designates — the back copy is read through synthetic pointers (every
   dereferenced address is offset by main_size, Figure 3).

   Update transactions always execute on main (which keeps the allocator
   oblivious to the two instances) and toggle the control variable twice:

     user code on main .. commit_main (psync: main durable)
     lr <- main; drain back readers        (new state becomes visible)
     replicate modified ranges to back
     lr <- back; drain main readers        (main free for the next writer)

   Readers may only be directed at main after psync, so everything a
   reader can observe is durable (durable linearizability). *)

open Sync_prims

type t = {
  e : Engine.t;
  lr : Left_right.t;
  fc : Flat_combining.t;
}

let name = "romLR"

(* Failpoints for the two Left-Right-specific windows: readers have been
   redirected to the freshly committed main (back is stale, durably so),
   and the symmetric point after replication sent them back. *)
let fp_readers_on_main = Fault.site "romLR.update.readers_on_main"
let fp_readers_on_back = Fault.site "romLR.update.readers_on_back"

let inst_main = 0
let inst_back = 1

let open_region r =
  { e = Engine.create ~mode:Engine.Logged r;
    lr = Left_right.create ~initial_lr:inst_back ();
    fc = Flat_combining.create () }

let region t = Engine.region t.e

let in_update_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let read_depth_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

(* Synthetic-pointer offset of the current domain: 0 when addressing main,
   main_size when addressing back. *)
let delta_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let in_update () = Domain.DLS.get in_update_key
let read_depth () = Domain.DLS.get read_depth_key
let delta () = Domain.DLS.get delta_key

let read_tx t f =
  if in_update () || read_depth () > 0 then f ()
  else begin
    let tid = Tid.current () in
    let v = Left_right.arrive t.lr tid in
    let d =
      if Left_right.which_instance t.lr = inst_back then Engine.main_size t.e
      else 0
    in
    Domain.DLS.set delta_key d;
    Domain.DLS.set read_depth_key 1;
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set read_depth_key 0;
        Domain.DLS.set delta_key 0;
        Left_right.depart t.lr tid v)
      f
  end

let update_tx t f =
  if in_update () then f ()
  else begin
    let result = ref None in
    let request () =
      Domain.DLS.set in_update_key true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set in_update_key false)
        (fun () -> result := Some (f ()))
    in
    let exec run_batch =
      (* before the CPY durability point a raising request (or injected
         fault, even one inside begin_tx itself) aborts the attempt:
         readers never left the back copy, so the Left-Right state needs
         no repair — only the twin-copy roll back that abort_main
         performs *)
      (try
         Engine.begin_tx t.e;
         run_batch ();
         Engine.commit_main t.e
       with e -> Engine.abort_main t.e e);
      match
        (* expose the new state: readers move to main (already durable) *)
        Left_right.set_lr t.lr inst_main;
        Left_right.toggle_version_and_wait t.lr;
        Fault.hit fp_readers_on_main;
        Engine.replicate t.e;
        (* send readers back to the back copy, freeing main for the next
           update transaction *)
        Left_right.set_lr t.lr inst_back;
        Left_right.toggle_version_and_wait t.lr;
        Fault.hit fp_readers_on_back;
        Engine.finish_tx t.e
      with
      | () -> ()
      | exception e ->
        (* post-durability windows are crash-only, so this is (virtually
           always) a simulated crash — but the volatile Left-Right state
           must honour its invariant before the combiner lock is
           released: park new readers on back and drain main, so a
           subsequent writer (after recovery) finds main free *)
        Left_right.set_lr t.lr inst_back;
        Left_right.toggle_version_and_wait t.lr;
        raise e
    in
    Flat_combining.apply t.fc request ~exec;
    match !result with Some v -> v | None -> assert false
  end

(* A domain inside a read-only transaction must never store, even when a
   combiner elsewhere has an engine transaction open (the engine's own
   in-transaction check cannot tell the two domains apart) — and a
   back-reader's synthetic-pointer delta must never leak into a store. *)
let check_not_read_only () =
  if read_depth () > 0 && not (in_update ()) then
    raise Engine.Store_outside_transaction

let load t off = Engine.load_off t.e (delta ()) off
let load_bytes t off len = Engine.load_bytes_off t.e (delta ()) off len

let store t off v =
  check_not_read_only ();
  Engine.store t.e off v

let store_bytes t off s =
  check_not_read_only ();
  Engine.store_bytes t.e off s

let alloc t n =
  check_not_read_only ();
  Engine.alloc t.e n

let free t p =
  check_not_read_only ();
  Engine.free t.e p

let get_root t i = Engine.get_root_off t.e (delta ()) i

let set_root t i v =
  check_not_read_only ();
  Engine.set_root t.e i v

(* test hooks *)
let engine t = t.e

let recover t =
  Engine.recover t.e;
  Left_right.set_lr t.lr inst_back

let recover_salvage t =
  let lost = Engine.recover_salvage t.e in
  Left_right.set_lr t.lr inst_back;
  lost

let scrub t = Engine.scrub t.e
let scrub_salvage t = Engine.scrub_salvage t.e
let media_spans t = Engine.media_spans t.e
let allocator_check t = Engine.allocator_check t.e

(* debug hook: the calling domain's current synthetic-pointer offset *)
let current_delta () = delta ()
