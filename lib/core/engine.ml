(* The twin-copy persistence engine: Algorithm 1 of the paper, plus the
   volatile-redo-log optimization of §4.7, decomposed so the Left-Right
   front-end can interleave reader toggles with the commit steps.

   Region layout (Figure 2):

     0      magic
     8      state: IDL | MUT | CPY
     64     main region: [ roots | allocator arena (metadata + heap) ]
     64+S   back region: byte-per-byte replica of main

   [state] tells recovery which copy is consistent: IDL = both, MUT = back,
   CPY = main.  The back region is never addressed by user code: it holds
   pointer values that refer into main ("synthetic pointers" are produced
   by adding [main_size] to every address a back-reader dereferences).

   Store interposition (the persist<T> of §3.2): every store inside a
   transaction appends its range to the volatile log (in Logged mode) and
   records the modified cache line in a per-transaction dirty-line set.
   The write-backs are deferred: commit_main flushes each dirty line
   exactly once, right before the CPY fence, so a transaction that stores
   repeatedly into the same line pays one pwb instead of one per store.
   Algorithm 1's ordering is preserved — every main pwb still precedes
   the fence that publishes state = CPY.  ([configure ~eager_pwb:true]
   restores the pwb-per-store schedule for ablation.)

   The allocator runs over the same interposed memory, so its metadata
   rolls back with the transaction (§4.4). *)

type mode = Full_copy | Logged

exception Store_outside_transaction

exception Root_out_of_bounds of int

exception Recovery_error of string

(* An update transaction whose closure (or pre-durability commit
   machinery) raised: the transaction was rolled back — main restored
   from back, state republished as IDL — and the original exception is
   re-raised wrapped here, with the backtrace captured at the abort. *)
exception Tx_aborted of { cause : exn; backtrace : string }

(* A scrub found a line whose sidecar CRC fails and no twin can repair it:
   both copies of the line are bad, the line has no twin (headers,
   single-copy baselines), or the protocol state forbids trusting the
   surviving copy.  [state] names the protocol state the scrub ran under
   ("IDL"/"MUT"/"CPY", "header" for untwinned header lines, "none" for
   the single-copy baselines). *)
exception Unrepairable of { offset : int; state : string }

type scrub_report = {
  scrubbed : int;
  repaired : int;
  unrepairable : (int * string) list;
      (* salvage mode only: lines no twin could vouch for, tolerated
         instead of raised because recovery did not need to copy them *)
}

let recovery_error fmt =
  Printf.ksprintf (fun s -> raise (Recovery_error s)) fmt

(* Failpoint sites: the exact windows of Algorithm 1 the proofs reason
   about, targetable by name from crash campaigns (see lib/fault).
   Raise-capable sites sit strictly before the CPY durability point, so
   an injected exception there must abort the transaction cleanly; the
   post-CPY and recovery windows are crash-only. *)
let fp_mut_published = Fault.site ~can_raise:true "engine.begin.mut_published"
let fp_before_flush = Fault.site ~can_raise:true "engine.commit.before_flush"
let fp_cpy_published = Fault.site "engine.commit.cpy_published"
let fp_replicate_copied = Fault.site "engine.replicate.copied"
let fp_recover_copied = Fault.site "engine.recover.copied"
let fp_format_before_magic = Fault.site "engine.format.before_magic"

(* Abort-path windows: main restored from back but IDL not yet durable,
   and the symmetric point right after it is.  Crash-only — recovery
   from a crash inside the abort path must converge to the pre-state. *)
let fp_abort_restored = Fault.site "engine.abort.restored"
let fp_abort_idl_published = Fault.site "engine.abort.idl_published"

(* Repair-window failpoints: a bad line was detected but its twin's
   content is not yet rewritten, and the point right after the repair is
   durable.  Crash-only — a crash anywhere inside the repair must leave
   the region recoverable (the bad line is still bad, or healed; never
   half-trusted). *)
let fp_scrub_bad_line = Fault.site "engine.scrub.bad_line"
let fp_scrub_repaired = Fault.site "engine.scrub.repaired"

let magic_value = 0x524F4D554C5553 (* "ROMULUS" *)

let o_magic = 0
let o_state = 8
let header_bytes = 64

let st_idl = 0
let st_mut = 1
let st_cpy = 2

module Mem = struct
  type t = {
    r : Pmem.Region.t;
    mutable log : Redo_log.t option;
    dirty : Pmem.Line_set.t;    (* lines with deferred write-backs *)
    line_shift : int;
    mutable eager_pwb : bool;   (* ablation: pwb at every store (seed) *)
  }

  let make r =
    let line = Pmem.Region.line_size r in
    let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
    let line_shift = log2 line 0 in
    { r; log = None;
      dirty = Pmem.Line_set.create ~lines:(Pmem.Region.size r lsr line_shift);
      line_shift;
      eager_pwb = false }

  let mark_dirty m off len =
    if len > 0 then begin
      let first = off lsr m.line_shift in
      let last = (off + len - 1) lsr m.line_shift in
      for line = first to last do
        Pmem.Line_set.set_dirty m.dirty line
      done
    end

  let load m off = Pmem.Region.load m.r off

  let store m off v =
    (match m.log with
     | Some l -> Redo_log.add l ~off ~len:8
     | None -> ());
    Pmem.Region.store m.r off v;
    if m.eager_pwb then Pmem.Region.pwb m.r off else mark_dirty m off 8

  (* Issue the deferred write-backs: one pwb per dirty line.  Must run
     before the next fence that orders main against the state word. *)
  let flush_dirty m =
    Pmem.Line_set.drain_all m.dirty (fun line _ ->
        Pmem.Region.pwb m.r (line lsl m.line_shift))

  (* Forget the deferred write-backs without issuing them (the caller has
     flushed the covering ranges explicitly, or a crash made them moot). *)
  let discard_dirty m = Pmem.Line_set.drain_all m.dirty (fun _ _ -> ())
end

module A = Palloc.Make (Mem)

type t = {
  r : Pmem.Region.t;
  mem : Mem.t;
  arena : A.t;
  mode : mode;
  log : Redo_log.t;
  main_start : int;
  main_size : int;
  arena_base : int;
  mutable in_tx : bool;
  mutable coalesce : bool;  (* merge log ranges before replicating *)
}

let main_start = header_bytes
let roots_bytes = 8 * Ptm_intf.root_slots

let layout r =
  let size = Pmem.Region.size r in
  let line = Pmem.Region.line_size r in
  let main_size = (size - main_start) / 2 land lnot (line - 1) in
  let arena_base = main_start + roots_bytes in
  if main_size < roots_bytes + Palloc.meta_bytes + 4096 then
    invalid_arg "Engine: region too small for twin copies";
  (main_size, arena_base)

let region t = t.r
let main_size t = t.main_size
let mode t = t.mode

(* Ablation knobs for the commit-path write-set optimizations; the
   defaults (deferred write-backs, coalesced log) are the fast path. *)
let configure ?eager_pwb ?coalesce ?redo_capacity t =
  Option.iter (fun b -> t.mem.Mem.eager_pwb <- b) eager_pwb;
  Option.iter (fun b -> t.coalesce <- b) coalesce;
  Option.iter (fun c -> Redo_log.set_capacity t.log c) redo_capacity

let eager_pwb t = t.mem.Mem.eager_pwb
let coalesce_enabled t = t.coalesce

(* Bytes of main that are meaningful: header-relative span from the start
   of main to the allocator frontier. *)
let used_span t = t.arena_base + A.used_bytes t.arena - t.main_start

(* ---- scrub: verify sidecar CRCs, repair from the twin ----

   The twin-copy layout is a latent replication scheme: a line whose
   per-line CRC fails in one copy can be rewritten from the other, under
   exactly the trust relation recovery already uses — IDL means both
   copies are consistent (either direction repairs), MUT means back is
   truth (only main may be repaired), CPY means main is truth (only back
   may be repaired).  Repairing *against* that relation could bless
   uncommitted or stale data, so a bad line in the truth copy whose twin
   cannot vouch for it is {!Unrepairable}.

   Untwinned lines — the 64-byte protocol header, and (with line sizes
   above 64) lines straddling a copy boundary — are detection-only.

   The repair itself is an ordinary persisted store (store + pwb + fence),
   so it is covered by crash traps and the [engine.scrub.*] failpoints:
   a crash inside the repair window leaves the line either still-bad
   (re-detected and re-repaired by the scrub recovery runs first) or
   healed; a torn write-back over the degraded cell cannot heal it, so
   the stale sidecar keeps witnessing the fault. *)

let state_name s =
  if s = st_idl then "IDL"
  else if s = st_mut then "MUT"
  else if s = st_cpy then "CPY"
  else string_of_int s

let scrub_raw ?(salvage = false) r ~main_size ~arena_base =
  let stats = Pmem.Region.stats r in
  let line = Pmem.Region.line_size r in
  let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
  let shift = log2 line 0 in
  let twin_d = main_size lsr shift in
  let scrubbed = ref 0 and repaired = ref 0 in
  let lost = ref [] in
  (* only clean lines are auditable: a dirty/pending line's next
     write-back supersedes whatever the medium holds *)
  let bad l =
    Pmem.Region.line_is_clean r ~line:l
    && not (Pmem.Region.media_ok r ~line:l)
  in
  let unrepairable ~tolerable l state =
    stats.Pmem.Stats.unrepairable_lines <-
      stats.Pmem.Stats.unrepairable_lines + 1;
    (* salvage mode tolerates data-loss lines recovery will not read:
       the shard can still serve every other line (reads of the lost
       line surface a typed Media_error).  Lines recovery must trust —
       the header, or any line under a state whose roll-forward/back
       would replicate it — stay fatal even in salvage mode. *)
    if salvage && tolerable then
      lost := (l lsl shift, state) :: !lost
    else raise (Unrepairable { offset = l lsl shift; state })
  in
  let visit () =
    incr scrubbed;
    stats.Pmem.Stats.scrubbed_lines <- stats.Pmem.Stats.scrubbed_lines + 1
  in
  (* header lines first: they hold the state word the trust relation
     depends on, and have no twin *)
  let hdr_last = (main_start - 1) lsr shift in
  for l = 0 to hdr_last do
    visit ();
    if bad l then unrepairable ~tolerable:false l "header"
  done;
  let state = Pmem.Region.load r o_state in
  let sname = state_name state in
  (* under IDL recovery copies nothing, so an unrepairable line is pure
     data loss, not a poisoned roll-forward source *)
  let tolerable = state = st_idl in
  (* per-copy spans from the allocator frontiers; a frontier that fails
     validation (or sits in a bad line) degrades to a full-copy walk *)
  let span_of copy_base =
    match Pmem.Region.load r (arena_base + copy_base + Palloc.top_offset) with
    | top
      when top >= arena_base + Palloc.meta_bytes
           && top <= main_start + main_size -> top - main_start
    | _ -> main_size
    | exception Pmem.Region.Media_error _ -> main_size
  in
  let repair ~dst ~src ~state =
    Fault.hit fp_scrub_bad_line;
    if bad src then unrepairable ~tolerable dst state
    else begin
      let content = Pmem.Region.load_bytes r (src lsl shift) line in
      Pmem.Region.store_bytes r (dst lsl shift) content;
      Pmem.Region.pwb_range r (dst lsl shift) line;
      Pmem.Region.pfence r;
      incr repaired;
      stats.Pmem.Stats.repaired_lines <-
        stats.Pmem.Stats.repaired_lines + 1;
      Fault.hit fp_scrub_repaired
    end
  in
  let scrub_copy ~base ~span ~twin ~repairable =
    if span > 0 then begin
      let first = max (hdr_last + 1) (base lsr shift) in
      let last = (base + span - 1) lsr shift in
      for l = first to last do
        visit ();
        if bad l then begin
          let fully_inside =
            l lsl shift >= base && (l + 1) lsl shift <= base + main_size
          in
          if fully_inside && repairable then
            repair ~dst:l ~src:(l + twin) ~state:sname
          else unrepairable ~tolerable l sname
        end
      done
    end
  in
  scrub_copy ~base:main_start ~span:(span_of 0) ~twin:twin_d
    ~repairable:(state = st_idl || state = st_mut);
  scrub_copy ~base:(main_start + main_size) ~span:(span_of main_size)
    ~twin:(-twin_d)
    ~repairable:(state = st_idl || state = st_cpy);
  { scrubbed = !scrubbed; repaired = !repaired;
    unrepairable = List.rev !lost }

(* ---- raw recovery (Algorithm 1, recover()) ----
   Runs before the allocator is attached, using only region primitives.

   Everything recovery reads from the persistent header is validated
   before it is trusted: the state must name one of the three protocol
   states, and the allocator frontier recovered from the consistent copy
   must lie inside that copy.  A violated check means the medium does not
   hold what the protocol could ever have written — recovery refuses with
   {!Recovery_error} instead of copying garbage over the good twin. *)

let recover_raw ?salvage r ~main_size ~arena_base =
  (* media pass first: roll-forward/back copies whole spans, so a rotten
     line in the truth copy must be repaired (or refused as
     {!Unrepairable}) before it can be replicated over the good twin.
     In salvage mode the scrub tolerates IDL-state data-loss lines, and
     an IDL state means the match below is a no-op — so every tolerated
     line is by construction one recovery never copies. *)
  let report = scrub_raw ?salvage r ~main_size ~arena_base in
  let top_addr copy_base = arena_base + copy_base + Palloc.top_offset in
  let validate_top ~which top =
    if top < arena_base + Palloc.meta_bytes || top > main_start + main_size
    then
      recovery_error
        "Engine.recover: allocator frontier %d of the %s copy outside \
         [%d, %d]"
        top which
        (arena_base + Palloc.meta_bytes)
        (main_start + main_size)
  in
  let finish () =
    Pmem.Region.pfence r;
    Pmem.Region.store r o_state st_idl;
    Pmem.Region.pwb r o_state;
    Pmem.Region.pfence r
  in
  (match Pmem.Region.load r o_state with
  | s when s = st_idl -> ()
  | s when s = st_cpy ->
    (* main is consistent: bring back up to date *)
    let top = Pmem.Region.load r (top_addr 0) in
    validate_top ~which:"main" top;
    let span = top - main_start in
    Pmem.Region.copy r ~src:main_start ~dst:(main_start + main_size)
      ~len:span;
    Pmem.Region.pwb_range r (main_start + main_size) span;
    Fault.hit fp_recover_copied;
    finish ()
  | s when s = st_mut ->
    (* the transaction did not commit: revert main from back *)
    let top = Pmem.Region.load r (top_addr main_size) in
    validate_top ~which:"back" top;
    let span = top - main_start in
    Pmem.Region.copy r ~src:(main_start + main_size) ~dst:main_start
      ~len:span;
    Pmem.Region.pwb_range r main_start span;
    Fault.hit fp_recover_copied;
    finish ()
  | s ->
    recovery_error "Engine.recover: state %d is none of IDL/MUT/CPY" s);
  report.unrepairable

(* ---- creation ---- *)

let create ~mode r =
  let main_size, arena_base = layout r in
  let mem = Mem.make r in
  let magic = Pmem.Region.load r o_magic in
  if magic <> 0 && magic <> magic_value then
    (* neither freshly zeroed nor ours: formatting over it would destroy
       a region some other system may still care about *)
    recovery_error "Engine.open: unrecognized magic %#x" magic;
  if magic = magic_value then begin
    (* Open in salvage mode: a region whose only damage is IDL-state data
       loss (both twins of a line rotten, nothing to roll forward over)
       still mounts — the loss stays detectable by {!scrub} and reads of
       the lost lines raise [Media_error].  Damage recovery would have to
       copy still refuses the open with {!Unrepairable}. *)
    ignore (recover_raw ~salvage:true r ~main_size ~arena_base
            : (int * string) list);
    let arena = A.attach mem ~base:arena_base in
    { r; mem; arena; mode; log = Redo_log.create ();
      main_start; main_size; arena_base; in_tx = false; coalesce = true }
  end
  else begin
    (* format: initialize main, replicate to back, then publish the magic
       last so that a crash mid-format reformats from scratch *)
    let arena_size = main_start + main_size - arena_base in
    let arena = A.init mem ~base:arena_base ~size:arena_size in
    let t =
      { r; mem; arena; mode; log = Redo_log.create ();
        main_start; main_size; arena_base; in_tx = false; coalesce = true }
    in
    Pmem.Region.store r o_state st_idl;
    let span = used_span t in
    Pmem.Region.copy r ~src:main_start ~dst:(main_start + main_size)
      ~len:span;
    (* only the used span of main and its back replica need flushing; the
       span covers every deferred store A.init issued *)
    Mem.discard_dirty mem;
    Pmem.Region.pwb_range r main_start span;
    Pmem.Region.pwb_range r (main_start + main_size) span;
    Pmem.Region.pwb r o_state;
    Pmem.Region.pfence r;
    Fault.hit fp_format_before_magic;
    Pmem.Region.store r o_magic magic_value;
    Pmem.Region.pwb r o_magic;
    Pmem.Region.pfence r;
    t
  end

(* Re-run recovery on an engine (used by tests after a simulated crash;
   equivalent to re-opening the region). *)
let recover_with ~salvage t =
  let lost =
    recover_raw ~salvage t.r ~main_size:t.main_size
      ~arena_base:t.arena_base
  in
  t.in_tx <- false;
  t.mem.log <- None;
  Mem.discard_dirty t.mem;
  Redo_log.clear t.log;
  lost

let recover t = ignore (recover_with ~salvage:false t : (int * string) list)
let recover_salvage t = recover_with ~salvage:true t

(* On-demand scrub of a quiescent engine (the failpoint-instrumented
   entry the campaigns drive). *)
let scrub_with ~salvage t =
  if t.in_tx then invalid_arg "Engine.scrub: transaction in progress";
  scrub_raw ~salvage t.r ~main_size:t.main_size ~arena_base:t.arena_base

let scrub t = scrub_with ~salvage:false t
let scrub_salvage t = scrub_with ~salvage:true t

(* Byte ranges a media-fault campaign may target such that every fault is
   at least detectable by {!scrub}: the used spans of both twins. *)
let media_spans t =
  let span = used_span t in
  [ (t.main_start, span); (t.main_start + t.main_size, span) ]

(* ---- transaction protocol (Algorithm 1) ---- *)

let begin_tx t =
  (* a dead machine reports the crash, not API misuse: another thread may
     have died inside its transaction, leaving [in_tx] set *)
  if Pmem.Region.is_dead t.r then raise Pmem.Region.Crash_point;
  if t.in_tx then invalid_arg "Engine.begin_tx: transactions do not nest";
  if t.mode = Logged then begin
    Redo_log.clear t.log;
    t.mem.log <- Some t.log
  end;
  t.in_tx <- true;
  Pmem.Region.store t.r o_state st_mut;
  Pmem.Region.pwb t.r o_state;
  Pmem.Region.pfence t.r;
  Fault.hit fp_mut_published

(* Make every in-place modification of main durable and mark the
   transaction committed.  After this returns, the effects are ACID-durable
   (recovery will roll forward, not back). *)
let commit_main t =
  Fault.hit fp_before_flush;
  (* deferred write-backs: every line the transaction dirtied is flushed
     exactly once, before the fence that orders main against CPY *)
  Mem.flush_dirty t.mem;
  Pmem.Region.pfence t.r;
  Pmem.Region.store t.r o_state st_cpy;
  Pmem.Region.pwb t.r o_state;
  Pmem.Region.psync t.r;
  let s = Pmem.Region.stats t.r in
  s.Pmem.Stats.commits <- s.Pmem.Stats.commits + 1;
  t.mem.log <- None;
  Fault.hit fp_cpy_published

(* Propagate the transaction's modifications from main to back. *)
let replicate t =
  (match t.mode with
   | Full_copy ->
     let span = used_span t in
     Pmem.Region.copy t.r ~src:t.main_start
       ~dst:(t.main_start + t.main_size) ~len:span;
     Pmem.Region.pwb_range t.r (t.main_start + t.main_size) span
   | Logged ->
     (* one copy + one pwb_range per maximal interval, not per raw entry *)
     if t.coalesce then Redo_log.coalesce t.log;
     Redo_log.iter t.log (fun ~off ~len ->
         Pmem.Region.copy t.r ~src:off ~dst:(off + t.main_size) ~len;
         Pmem.Region.pwb_range t.r (off + t.main_size) len));
  Fault.hit fp_replicate_copied;
  Pmem.Region.pfence t.r

let finish_tx t =
  Pmem.Region.store t.r o_state st_idl;
  t.in_tx <- false;
  Redo_log.clear t.log

let end_tx t =
  if not t.in_tx then invalid_arg "Engine.end_tx: no transaction";
  commit_main t;
  replicate t;
  finish_tx t

(* Roll an in-flight update transaction back.  While state = MUT the
   abort is "free" (§4.5): back is the consistent copy, so this is
   exactly recovery's MUT branch run in-process — whole-span restore in
   Full_copy, per-logged-range restore in Logged — followed by the same
   fence discipline that republishes IDL durably.  The original
   exception is re-raised wrapped in {!Tx_aborted}; crashes propagate
   raw (a dead region has nothing to roll back — reopening it runs real
   recovery), and an exception that slipped in after the CPY durability
   point rolls *forward*, because the transaction already committed. *)
let abort_main t cause =
  let backtrace = Printexc.get_backtrace () in
  if Pmem.Region.is_dead t.r || not t.in_tx then raise cause
  else if Pmem.Region.load t.r o_state = st_cpy then begin
    replicate t;
    finish_tx t;
    raise cause
  end
  else begin
    Mem.discard_dirty t.mem;
    (match t.mode with
     | Full_copy ->
       let top =
         Pmem.Region.load t.r (t.arena_base + t.main_size + Palloc.top_offset)
       in
       let span = top - t.main_start in
       Pmem.Region.copy t.r ~src:(t.main_start + t.main_size)
         ~dst:t.main_start ~len:span;
       Pmem.Region.pwb_range t.r t.main_start span
     | Logged ->
       Redo_log.iter t.log (fun ~off ~len ->
           Pmem.Region.copy t.r ~src:(off + t.main_size) ~dst:off ~len;
           Pmem.Region.pwb_range t.r off len));
    Fault.hit fp_abort_restored;
    Pmem.Region.pfence t.r;
    Pmem.Region.store t.r o_state st_idl;
    Pmem.Region.pwb t.r o_state;
    Pmem.Region.pfence t.r;
    Fault.hit fp_abort_idl_published;
    t.mem.log <- None;
    t.in_tx <- false;
    Redo_log.clear t.log;
    let s = Pmem.Region.stats t.r in
    s.Pmem.Stats.tx_aborts <- s.Pmem.Stats.tx_aborts + 1;
    match cause with
    | Tx_aborted _ | Pmem.Region.Crash_point -> raise cause
    | _ -> raise (Tx_aborted { cause; backtrace })
  end

(* ---- interposed accesses ---- *)

let check_main t off len what =
  if off < t.main_start || off + len > t.main_start + t.main_size then
    invalid_arg
      (Printf.sprintf "Engine.%s: offset %d outside main region" what off)

let load t off = Pmem.Region.load t.r off

(* Load through a synthetic pointer: [delta] is 0 for main readers and
   [main_size] for back readers (RomulusLR, §5.3). *)
let load_off t delta off = Pmem.Region.load t.r (off + delta)

let load_bytes_off t delta off len =
  Pmem.Region.load_bytes t.r (off + delta) len

let store t off v =
  if not t.in_tx then raise Store_outside_transaction;
  check_main t off 8 "store";
  Mem.store t.mem off v;
  let s = Pmem.Region.stats t.r in
  s.Pmem.Stats.user_bytes <- s.Pmem.Stats.user_bytes + 8

let load_bytes t off len = Pmem.Region.load_bytes t.r off len

let store_bytes t off str =
  if not t.in_tx then raise Store_outside_transaction;
  let len = String.length str in
  check_main t off len "store_bytes";
  (match t.mem.log with
   | Some l -> Redo_log.add l ~off ~len
   | None -> ());
  Pmem.Region.store_bytes t.r off str;
  if t.mem.eager_pwb then Pmem.Region.pwb_range t.r off len
  else Mem.mark_dirty t.mem off len;
  let s = Pmem.Region.stats t.r in
  s.Pmem.Stats.user_bytes <- s.Pmem.Stats.user_bytes + len

let alloc t n =
  if not t.in_tx then raise Store_outside_transaction;
  A.alloc t.arena n

let free t p =
  if not t.in_tx then raise Store_outside_transaction;
  A.free t.arena p

(* ---- roots ---- *)

let root_addr t i =
  if i < 0 || i >= Ptm_intf.root_slots then raise (Root_out_of_bounds i);
  t.main_start + (8 * i)

let get_root t i = Pmem.Region.load t.r (root_addr t i)

let get_root_off t delta i = Pmem.Region.load t.r (root_addr t i + delta)

let set_root t i v =
  if not t.in_tx then raise Store_outside_transaction;
  Mem.store t.mem (root_addr t i) v

(* ---- introspection for tests ---- *)

let allocator_check t = A.check t.arena
let log_entries t = Redo_log.entries t.log
let in_tx t = t.in_tx
