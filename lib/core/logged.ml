(* RomulusLog: twin-copy engine with the volatile redo log of §4.7 — only
   the ranges modified by the transaction are replicated to back — with
   flat combining + C-RW-WP (the paper's "RomL").

   Failpoints: the front-end registers "romL.combiner.batch_ran" (batch
   executed, commit not yet started); the engine's "engine.*" sites cover
   the commit and recovery windows.  Crash campaigns arm them by name via
   `crashtest --failpoint`. *)

include Crwwp_front.Make (struct
  let mode = Engine.Logged
  let name = "romL"
end)
