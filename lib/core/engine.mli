(** Twin-copy persistence engine (Algorithm 1 + the volatile-log
    optimization of §4.7), single-writer.  The concurrency front-ends
    ({!Basic}, {!Logged}, {!Lr}) compose this with C-RW-WP/flat-combining
    or Left-Right. *)

type mode =
  | Full_copy  (** basic Romulus: replicate the whole used span at commit *)
  | Logged     (** RomulusLog: replicate only the logged ranges *)

exception Store_outside_transaction

(** Raised by {!get_root}/{!set_root} (and the front-ends' root
    accessors) for a slot index outside [0, Ptm_intf.root_slots). *)
exception Root_out_of_bounds of int

(** Raised when the persistent header fails validation on open or
    recovery: unrecognized magic, a state outside {IDL, MUT, CPY}, or an
    allocator frontier pointing outside its copy.  Recovery refuses to
    touch a region it cannot interpret. *)
exception Recovery_error of string

(** An update transaction whose closure (or pre-durability commit
    machinery) raised.  The transaction was rolled back — main restored
    from back, state republished as IDL, allocator and roots exactly as
    before the transaction — and the original exception is re-raised
    wrapped here.  [backtrace] is the raw backtrace string captured when
    the abort began (empty unless backtrace recording is on). *)
exception Tx_aborted of { cause : exn; backtrace : string }

(** A scrub found a line whose sidecar CRC fails and that no twin can
    repair: both copies bad, an untwinned line (protocol header,
    single-copy baselines), or a protocol state that forbids trusting the
    surviving copy.  [state] is the protocol state the scrub ran under
    ("IDL"/"MUT"/"CPY"; "header" for header lines; the single-copy
    baselines report "none"). *)
exception Unrepairable of { offset : int; state : string }

type scrub_report = {
  scrubbed : int;  (** lines whose sidecar CRC the scrub verified *)
  repaired : int;  (** bad lines rewritten from their twin *)
  unrepairable : (int * string) list;
      (** salvage mode only ({!scrub_salvage}/{!recover_salvage}):
          ([offset], protocol state) of every line no twin could vouch
          for that was tolerated instead of raised.  Always [[]] from
          the raising entry points. *)
}

type t

(** Format a fresh (zeroed) region, or validate-and-recover an existing
    one (recognized by its magic number).  A region that is neither —
    nonzero but with an unrecognized magic — raises {!Recovery_error}
    rather than being silently reformatted.  Recovery runs in salvage
    mode: IDL-state data-loss lines (both twins rotten, nothing to copy)
    do not refuse the mount — they stay detectable by {!scrub} and raise
    [Media_error] when read — while damage that poisons a
    roll-forward/back still raises {!Unrepairable}. *)
val create : mode:mode -> Pmem.Region.t -> t

(** Re-run crash recovery (equivalent to re-opening the region after a
    simulated crash).  Recovery begins with a scrub pass: a rotten line in
    the truth copy is repaired from its twin (or refused as
    {!Unrepairable}) before roll-forward/back replicates anything over the
    good copy. *)
val recover : t -> unit

(** Walk the used spans of both twins, verify every clean line's sidecar
    CRC, and repair bad lines from their twin under the 3-state trust
    relation (IDL: either direction; MUT: back is truth, only main is
    repairable; CPY: main is truth, only back is repairable).  Repairs are
    ordinary persisted stores, instrumented by the [engine.scrub.bad_line]
    / [engine.scrub.repaired] failpoints.  Raises {!Unrepairable} on the
    first line no twin can vouch for, and [Invalid_argument] if called
    inside a transaction.  Also runs automatically at the head of
    {!recover}. *)
val scrub : t -> scrub_report

(** Like {!scrub}, but in salvage mode: under protocol state IDL —
    where recovery copies nothing, so an unrepairable line is pure data
    loss rather than a poisoned roll-forward source — bad lines no twin
    can vouch for are collected into [unrepairable] instead of raised.
    Lines recovery must trust stay fatal: a bad header line, or any
    unrepairable line under MUT/CPY, still raises {!Unrepairable}.
    Reads of a tolerated line keep surfacing [Pmem.Region.Media_error];
    nothing is silently blessed. *)
val scrub_salvage : t -> scrub_report

(** {!recover} with the salvage scrub at its head: returns the tolerated
    ([offset], state) data-loss lines (empty when the medium is sound).
    Raises {!Unrepairable} exactly when {!scrub_salvage} would — i.e.
    when the damage poisons a line recovery would have to copy. *)
val recover_salvage : t -> (int * string) list

(** Byte ranges ([offset], [length]) a media-fault campaign may target
    such that every injected fault is at least detectable by {!scrub}:
    the used spans of both twins. *)
val media_spans : t -> (int * int) list

val region : t -> Pmem.Region.t
val main_size : t -> int
val mode : t -> mode

(** Ablation knobs for the commit-path write-set optimizations.
    [eager_pwb] (default [false]) issues a pwb at every interposed store
    instead of deferring line write-backs to [commit_main]; [coalesce]
    (default [true]) merges the redo log into maximal intervals before
    replication; [redo_capacity] bounds the volatile redo log's entry
    count (default [Redo_log.default_capacity]) — an update transaction
    that exceeds it aborts with {!Tx_aborted} carrying
    {!Redo_log.Overflow}. *)
val configure :
  ?eager_pwb:bool -> ?coalesce:bool -> ?redo_capacity:int -> t -> unit

val eager_pwb : t -> bool
val coalesce_enabled : t -> bool

(** Bytes of main in use (what a Full_copy commit replicates). *)
val used_span : t -> int

(** state <- MUT; pwb; pfence.  Does not nest. *)
val begin_tx : t -> unit

(** Flush deferred dirty-line write-backs (one pwb per line); pfence;
    state <- CPY; pwb; psync.  After this the transaction is ACID-durable
    on main. *)
val commit_main : t -> unit

(** Copy the modified span/ranges from main to back; pwb per line;
    pfence. *)
val replicate : t -> unit

(** state <- IDL; leave the transaction. *)
val finish_tx : t -> unit

(** [commit_main] + [replicate] + [finish_tx] — at most 4 persistence
    fences per transaction including the one in [begin_tx]. *)
val end_tx : t -> unit

(** [abort_main t cause] rolls the in-flight update transaction back and
    never returns.  While state = MUT the abort is "free": back is the
    consistent copy, so main is restored from it (whole used span in
    [Full_copy], the logged ranges in [Logged]) and IDL is republished
    with the same fence discipline as recovery.  Re-raises [cause]
    wrapped in {!Tx_aborted} — except crashes ([Pmem.Region.Crash_point])
    and already-wrapped {!Tx_aborted}, which propagate raw, and an
    exception arriving after the CPY durability point, which rolls the
    commit *forward* (the transaction is durable; nothing aborts) and
    re-raises the cause unwrapped. *)
val abort_main : t -> exn -> 'a

val load : t -> int -> int

(** [load_off t delta off] loads through a synthetic pointer: [delta] is 0
    for main readers, [main_size t] for back readers (RomulusLR). *)
val load_off : t -> int -> int -> int

val load_bytes : t -> int -> int -> string
val load_bytes_off : t -> int -> int -> int -> string

(** Interposed store: log (in [Logged] mode) + in-place store + deferred
    dirty-line tracking (or an immediate pwb under [~eager_pwb:true]).
    Raises {!Store_outside_transaction} outside [begin_tx]/[end_tx]. *)
val store : t -> int -> int -> unit

val store_bytes : t -> int -> string -> unit
val alloc : t -> int -> int
val free : t -> int -> unit
val get_root : t -> int -> int
val get_root_off : t -> int -> int -> int
val set_root : t -> int -> int -> unit

(** Allocator structural check (tests). *)
val allocator_check : t -> (unit, string) result

val log_entries : t -> int
val in_tx : t -> bool
