(** The persistent-transactional-memory interface.

    All persistent data lives in a {!Pmem.Region.t}; persistent "pointers"
    are byte offsets into the region (0 is never a valid object offset, so
    it serves as null).  Data-structure code is written as functors over
    this signature and runs unchanged on every PTM in the repository
    (the three Romulus variants and the undo-log / redo-log baselines),
    which is how the paper's cross-PTM benchmarks are expressed. *)

module type S = sig
  type t

  (** Short name used in benchmark output ("rom", "romL", "romLR", ...). *)
  val name : string

  (** Open a region: formats it on first use, otherwise runs recovery.
      The result is ready for transactions. *)
  val open_region : Pmem.Region.t -> t

  val region : t -> Pmem.Region.t

  (** Run a read-only transaction.  Read-only transactions never write to
      persistent memory; attempting to [store] inside one raises
      [Engine.Store_outside_transaction] (and the read ingress — read
      indicator, Left-Right arrival — is still departed when the closure
      raises). *)
  val read_tx : t -> (unit -> 'a) -> 'a

  (** Run an update transaction, durably: when [update_tx] returns, the
      transaction's effects survive any subsequent crash.  When the
      closure (or the pre-durability commit machinery) raises, the
      transaction aborts — every persistent effect, including allocator
      metadata, is rolled back — and the exception is re-raised wrapped
      in [Engine.Tx_aborted] (simulated crashes propagate raw).  The
      lock-free baseline (Mnemosyne-like) may additionally re-execute
      the closure on conflict, so closures should not perform
      non-idempotent volatile side effects. *)
  val update_tx : t -> (unit -> 'a) -> 'a

  (** Load the word at a byte offset (inside a transaction). *)
  val load : t -> int -> int

  (** Store a word (update transactions only). *)
  val store : t -> int -> int -> unit

  val load_bytes : t -> int -> int -> string
  val store_bytes : t -> int -> string -> unit

  (** Allocate [n] payload bytes from the persistent allocator; part of the
      enclosing transaction (rolled back if the transaction does not
      commit).  The payload is not zeroed. *)
  val alloc : t -> int -> int

  val free : t -> int -> unit

  (** Root pointers ("objects array"): the named entry points from which
      all persistent data must be reachable after a restart. *)
  val get_root : t -> int -> int

  val set_root : t -> int -> int -> unit
end

(** Number of root-pointer slots every PTM provides. *)
let root_slots = 64
