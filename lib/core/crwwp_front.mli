(** Flat-combining + C-RW-WP concurrency front-end over the twin-copy
    engine (§5.2); instantiated as {!Basic} (whole-span replication) and
    {!Logged} (volatile redo log). *)

module type CONFIG = sig
  val mode : Engine.mode
  val name : string
end

module Make (_ : CONFIG) : sig
  include Ptm_intf.S

  (** The underlying twin-copy engine (tests/benchmarks). *)
  val engine : t -> Engine.t

  (** Re-run crash recovery after a simulated power failure. *)
  val recover : t -> unit

  (** Salvage-mode recovery (see {!Engine.recover_salvage}): returns the
      tolerated data-loss lines instead of raising on IDL-state damage. *)
  val recover_salvage : t -> (int * string) list

  (** On-demand twin-copy scrub-and-repair (see {!Engine.scrub}). *)
  val scrub : t -> Engine.scrub_report

  (** Salvage-mode scrub (see {!Engine.scrub_salvage}). *)
  val scrub_salvage : t -> Engine.scrub_report

  (** Fault-campaign target ranges (see {!Engine.media_spans}). *)
  val media_spans : t -> (int * int) list

  (** Structural check of the persistent allocator. *)
  val allocator_check : t -> (unit, string) result
end
