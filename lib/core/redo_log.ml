(* The volatile redo log of §4.7: the addresses and ranges modified by the
   current transaction — never the data itself, and never persisted.  At
   commit, only these ranges are copied from main to back.

   Word-sized entries (the common case) are deduplicated so that a loop
   storing to the same field logs one range, not thousands; ranges from
   blob stores are appended as-is.

   The dedup structure is an open-addressed table in a flat [int array]
   — no boxing, no bucket lists, and no allocation on the per-store fast
   path (a boxed [Hashtbl] allocated a bucket cell on every insert,
   which showed up directly in the per-store cost).  Slots hold
   [offset + 1] so that 0 can mean "empty" without special-casing
   offset 0. *)

exception Overflow of { capacity : int }

(* Large enough that only a deliberately pathological transaction hits
   it; small enough that a runaway store loop surfaces as a typed,
   abortable error instead of unbounded DRAM growth. *)
let default_capacity = 1 lsl 20

let initial_table_size = 128 (* power of two *)

type t = {
  mutable offs : int array;
  mutable lens : int array;
  mutable n : int;
  mutable capacity : int;   (* max entries before {!Overflow} *)
  (* open-addressed word-dedup table: 0 = empty slot *)
  mutable words : int array;
  mutable word_count : int;
}

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Redo_log.create: capacity < 1";
  { offs = Array.make 64 0; lens = Array.make 64 0; n = 0; capacity;
    words = Array.make initial_table_size 0; word_count = 0 }

let capacity t = t.capacity

let set_capacity t c =
  if c < 1 then invalid_arg "Redo_log.set_capacity: capacity < 1";
  t.capacity <- c

let clear t =
  t.n <- 0;
  if t.word_count > 0 then begin
    (* a pathological transaction can balloon the table; don't make every
       later small transaction pay an O(high-water) fill to reset it *)
    if Array.length t.words > 8 * initial_table_size
       && 8 * t.word_count < Array.length t.words
    then t.words <- Array.make initial_table_size 0
    else Array.fill t.words 0 (Array.length t.words) 0;
    t.word_count <- 0
  end

(* Multiplicative hash (splitmix-style odd constant): word offsets are
   8-aligned and clustered, so the low bits alone would collide
   pathologically. *)
let hash_off off =
  let h = off * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let word_insert words mask key =
  let rec probe i =
    let v = Array.unsafe_get words i in
    if v = 0 then Array.unsafe_set words i key
    else if v <> key then probe ((i + 1) land mask)
  in
  probe (hash_off key land mask)

let grow_words t =
  let old = t.words in
  let size = 2 * Array.length old in
  let words = Array.make size 0 in
  let mask = size - 1 in
  for i = 0 to Array.length old - 1 do
    let v = Array.unsafe_get old i in
    if v <> 0 then word_insert words mask v
  done;
  t.words <- words

(* Membership test + insert in one probe sequence; returns [true] iff
   [off] was newly inserted.  Load factor kept below 1/2. *)
let word_add t off =
  if 2 * (t.word_count + 1) > Array.length t.words then grow_words t;
  let key = off + 1 in
  let words = t.words in
  let mask = Array.length words - 1 in
  let rec probe i =
    let v = Array.unsafe_get words i in
    if v = 0 then begin
      Array.unsafe_set words i key;
      t.word_count <- t.word_count + 1;
      true
    end
    else if v = key then false
    else probe ((i + 1) land mask)
  in
  probe (hash_off key land mask)

let append t off len =
  (* raised before anything is recorded: the log still covers exactly the
     stores that were applied, so an abort can roll them back *)
  if t.n >= t.capacity then raise (Overflow { capacity = t.capacity });
  if t.n = Array.length t.offs then begin
    let cap = 2 * t.n in
    let offs = Array.make cap 0 and lens = Array.make cap 0 in
    Array.blit t.offs 0 offs 0 t.n;
    Array.blit t.lens 0 lens 0 t.n;
    t.offs <- offs;
    t.lens <- lens
  end;
  t.offs.(t.n) <- off;
  t.lens.(t.n) <- len;
  t.n <- t.n + 1

let add t ~off ~len =
  if len = 8 then begin
    if word_add t off then append t off len
  end
  else if len > 0 then append t off len

let iter t f =
  for i = 0 to t.n - 1 do
    f ~off:t.offs.(i) ~len:t.lens.(i)
  done

(* Merge the logged ranges into maximal intervals: sort by offset, then
   fuse every overlapping or adjacent pair.  Replication afterwards does
   one copy + one pwb_range per interval instead of per entry, which is
   where repeated neighbouring stores (allocator metadata, struct fields)
   stop costing one write-back each.

   Entries already appended stay deduplicated in [words]; an interval
   covering a word is at least as large as its original range, so later
   appends of the same word remain redundant. *)
let coalesce t =
  if t.n > 1 then begin
    let order = Array.init t.n (fun i -> i) in
    Array.sort (fun a b -> compare t.offs.(a) t.offs.(b)) order;
    let offs = Array.map (fun i -> t.offs.(i)) order in
    let lens = Array.map (fun i -> t.lens.(i)) order in
    let m = ref 0 in
    for i = 0 to t.n - 1 do
      let off = offs.(i) and len = lens.(i) in
      if !m > 0 && off <= t.offs.(!m - 1) + t.lens.(!m - 1) then begin
        let cur_end = t.offs.(!m - 1) + t.lens.(!m - 1) in
        if off + len > cur_end then
          t.lens.(!m - 1) <- off + len - t.offs.(!m - 1)
      end
      else begin
        t.offs.(!m) <- off;
        t.lens.(!m) <- len;
        incr m
      end
    done;
    t.n <- !m
  end

let entries t = t.n

let is_empty t = t.n = 0

let bytes t =
  let total = ref 0 in
  for i = 0 to t.n - 1 do
    total := !total + t.lens.(i)
  done;
  !total
