(* The volatile redo log of §4.7: the addresses and ranges modified by the
   current transaction — never the data itself, and never persisted.  At
   commit, only these ranges are copied from main to back.

   Word-sized entries (the common case) are deduplicated with a hash table
   so that a loop storing to the same field logs one range, not thousands;
   ranges from blob stores are appended as-is. *)

exception Overflow of { capacity : int }

(* Large enough that only a deliberately pathological transaction hits
   it; small enough that a runaway store loop surfaces as a typed,
   abortable error instead of unbounded DRAM growth. *)
let default_capacity = 1 lsl 20

type t = {
  mutable offs : int array;
  mutable lens : int array;
  mutable n : int;
  mutable capacity : int;   (* max entries before {!Overflow} *)
  words : (int, unit) Hashtbl.t;
}

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Redo_log.create: capacity < 1";
  { offs = Array.make 64 0; lens = Array.make 64 0; n = 0; capacity;
    words = Hashtbl.create 64 }

let capacity t = t.capacity

let set_capacity t c =
  if c < 1 then invalid_arg "Redo_log.set_capacity: capacity < 1";
  t.capacity <- c

let clear t =
  t.n <- 0;
  Hashtbl.reset t.words

let append t off len =
  (* raised before anything is recorded: the log still covers exactly the
     stores that were applied, so an abort can roll them back *)
  if t.n >= t.capacity then raise (Overflow { capacity = t.capacity });
  if t.n = Array.length t.offs then begin
    let cap = 2 * t.n in
    let offs = Array.make cap 0 and lens = Array.make cap 0 in
    Array.blit t.offs 0 offs 0 t.n;
    Array.blit t.lens 0 lens 0 t.n;
    t.offs <- offs;
    t.lens <- lens
  end;
  t.offs.(t.n) <- off;
  t.lens.(t.n) <- len;
  t.n <- t.n + 1

let add t ~off ~len =
  if len = 8 then begin
    if not (Hashtbl.mem t.words off) then begin
      Hashtbl.replace t.words off ();
      append t off len
    end
  end
  else if len > 0 then append t off len

let iter t f =
  for i = 0 to t.n - 1 do
    f ~off:t.offs.(i) ~len:t.lens.(i)
  done

(* Merge the logged ranges into maximal intervals: sort by offset, then
   fuse every overlapping or adjacent pair.  Replication afterwards does
   one copy + one pwb_range per interval instead of per entry, which is
   where repeated neighbouring stores (allocator metadata, struct fields)
   stop costing one write-back each.

   Entries already appended stay deduplicated in [words]; an interval
   covering a word is at least as large as its original range, so later
   appends of the same word remain redundant. *)
let coalesce t =
  if t.n > 1 then begin
    let order = Array.init t.n (fun i -> i) in
    Array.sort (fun a b -> compare t.offs.(a) t.offs.(b)) order;
    let offs = Array.map (fun i -> t.offs.(i)) order in
    let lens = Array.map (fun i -> t.lens.(i)) order in
    let m = ref 0 in
    for i = 0 to t.n - 1 do
      let off = offs.(i) and len = lens.(i) in
      if !m > 0 && off <= t.offs.(!m - 1) + t.lens.(!m - 1) then begin
        let cur_end = t.offs.(!m - 1) + t.lens.(!m - 1) in
        if off + len > cur_end then
          t.lens.(!m - 1) <- off + len - t.offs.(!m - 1)
      end
      else begin
        t.offs.(!m) <- off;
        t.lens.(!m) <- len;
        incr m
      end
    done;
    t.n <- !m
  end

let entries t = t.n

let is_empty t = t.n = 0

let bytes t =
  let total = ref 0 in
  for i = 0 to t.n - 1 do
    total := !total + t.lens.(i)
  done;
  !total
