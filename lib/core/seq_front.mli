(** The single-threaded API of §5.1: the durable twin-copy engine with no
    synchronization whatsoever.  Cheapest transactions; NOT thread-safe —
    use {!Basic}/{!Logged}/{!Lr} for concurrent applications. *)

include Ptm_intf.S

val engine : t -> Engine.t
val recover : t -> unit
val scrub : t -> Engine.scrub_report
val media_spans : t -> (int * int) list
val allocator_check : t -> (unit, string) result
