(* The single-threaded API of §5.1: durable transactions with no
   synchronization at all — no flat combining, no reader-writer lock, no
   read indicators.  "Support for concurrency in such settings can be as
   simple as using mutual exclusion locks"; here the application promises
   there is exactly one thread, and in exchange pays zero synchronization
   overhead (the paper's argument against an STM that taxes even
   single-threaded applications).

   NOT thread-safe: concurrent use is a bug in the caller. *)

type t = { e : Engine.t; mutable depth : int }

let name = "romSeq"

let open_region r =
  { e = Engine.create ~mode:Engine.Logged r; depth = 0 }

let region t = Engine.region t.e

let update_tx t f =
  if t.depth > 0 then f ()
  else begin
    t.depth <- 1;
    Fun.protect
      ~finally:(fun () -> t.depth <- 0)
      (fun () ->
        match
          Engine.begin_tx t.e;
          f ()
        with
        | v ->
          Engine.end_tx t.e;
          v
        | exception e ->
          (* roll back (even when begin_tx itself raised at an injected
             fault site): main restored from back, the exception
             re-raised wrapped in Engine.Tx_aborted (crashes raw) *)
          Engine.abort_main t.e e)
  end

(* single-threaded read transactions are plain code; stores inside them
   hit the engine's Store_outside_transaction check *)
let read_tx t f =
  ignore t;
  f ()

let load t off = Engine.load t.e off
let store t off v = Engine.store t.e off v
let load_bytes t off len = Engine.load_bytes t.e off len
let store_bytes t off s = Engine.store_bytes t.e off s
let alloc t n = Engine.alloc t.e n
let free t p = Engine.free t.e p
let get_root t i = Engine.get_root t.e i
let set_root t i v = Engine.set_root t.e i v

(* test hooks *)
let engine t = t.e

let recover t =
  Engine.recover t.e;
  t.depth <- 0

let scrub t = Engine.scrub t.e
let media_spans t = Engine.media_spans t.e
let allocator_check t = Engine.allocator_check t.e
