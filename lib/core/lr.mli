(** RomulusLR (§5.3): the twin-copy engine composed with Left-Right —
    wait-free read-only transactions that read the back copy through
    synthetic pointers, and starvation-free flat-combined updates. *)

include Ptm_intf.S

val engine : t -> Engine.t
val recover : t -> unit
val recover_salvage : t -> (int * string) list
val scrub : t -> Engine.scrub_report
val scrub_salvage : t -> Engine.scrub_report
val media_spans : t -> (int * int) list
val allocator_check : t -> (unit, string) result

(** Debug hook: the calling domain's current synthetic-pointer offset
    (0 when addressing main, [main_size] when a read-only transaction is
    parked on the back copy). *)
val current_delta : unit -> int
