(** Romulus (basic): twin-copy engine with whole-span replication at
    commit, flat combining + C-RW-WP concurrency — the paper's "Rom". *)

include Ptm_intf.S

val engine : t -> Engine.t
val recover : t -> unit
val recover_salvage : t -> (int * string) list
val scrub : t -> Engine.scrub_report
val scrub_salvage : t -> Engine.scrub_report
val media_spans : t -> (int * int) list
val allocator_check : t -> (unit, string) result
