(* Concurrency front-end shared by Romulus and RomulusLog (§5.2): update
   transactions are aggregated by flat combining and executed by a single
   combiner holding the C-RW-WP writer lock; read-only transactions take
   the scalable reader side and read main in place.

   The combiner runs a whole batch inside ONE durable engine transaction,
   so the persistence fences are amortized over the batch ("the average
   number of persistent fences per mutation can be smaller than 4").
   Requests are only marked done after the engine transaction committed,
   which preserves durable linearizability for helped operations. *)

open Sync_prims

module type CONFIG = sig
  val mode : Engine.mode
  val name : string
end

module Make (Config : CONFIG) = struct
  type t = {
    e : Engine.t;
    lock : Crwwp.t;
    fc : Flat_combining.t;
  }

  let name = Config.name

  (* Per-variant failpoint: the combiner ran the whole batch but the
     engine transaction has not yet started committing — a crash here
     must lose every helped operation at once, and an injected exception
     must abort the whole batch cleanly. *)
  let fp_batch_ran = Fault.site ~can_raise:true (Config.name ^ ".combiner.batch_ran")

  let open_region r =
    { e = Engine.create ~mode:Config.mode r;
      lock = Crwwp.create ();
      fc = Flat_combining.create () }

  let region t = Engine.region t.e

  (* Per-domain nesting state: inside an update (combiner executing user
     code) everything runs directly; read_tx nesting is counted so the
     reader lock is taken exactly once. *)
  let in_update_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
  let read_depth_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

  let in_update () = Domain.DLS.get in_update_key
  let read_depth () = Domain.DLS.get read_depth_key

  let read_tx t f =
    if in_update () || read_depth () > 0 then f ()
    else begin
      let tid = Tid.current () in
      Domain.DLS.set read_depth_key 1;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set read_depth_key 0)
        (fun () -> Crwwp.with_read_lock t.lock tid f)
    end

  let update_tx t f =
    if in_update () then f ()
    else begin
      let result = ref None in
      let request () =
        (* runs on the combiner's domain *)
        Domain.DLS.set in_update_key true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set in_update_key false)
          (fun () -> result := Some (f ()))
      in
      let exec run_batch =
        Crwwp.with_write_lock t.lock (fun () ->
            (* a raising request (or injected fault, even one inside
               begin_tx itself) aborts the whole attempt — partial
               effects of the batch must not commit; the combiner
               answers the raiser with the Tx_aborted and retries the
               survivors in a fresh exec round *)
            try
              Engine.begin_tx t.e;
              run_batch ();
              Fault.hit fp_batch_ran;
              Engine.end_tx t.e
            with e -> Engine.abort_main t.e e)
      in
      Flat_combining.apply t.fc request ~exec;
      match !result with
      | Some v -> v
      | None ->
        (* own request raised: Flat_combining.apply re-raised it, so this
           is unreachable *)
        assert false
    end

  (* A domain inside a read-only transaction must never store, even when
     a combiner elsewhere has an engine transaction open (the engine's
     own in-transaction check cannot tell the two domains apart). *)
  let check_not_read_only () =
    if read_depth () > 0 && not (in_update ()) then
      raise Engine.Store_outside_transaction

  let load t off = Engine.load t.e off

  let store t off v =
    check_not_read_only ();
    Engine.store t.e off v

  let load_bytes t off len = Engine.load_bytes t.e off len

  let store_bytes t off s =
    check_not_read_only ();
    Engine.store_bytes t.e off s

  let alloc t n =
    check_not_read_only ();
    Engine.alloc t.e n

  let free t p =
    check_not_read_only ();
    Engine.free t.e p

  let get_root t i = Engine.get_root t.e i

  let set_root t i v =
    check_not_read_only ();
    Engine.set_root t.e i v

  (* test hooks *)
  let engine t = t.e
  let recover t = Engine.recover t.e
  let recover_salvage t = Engine.recover_salvage t.e
  let scrub t = Engine.scrub t.e
  let scrub_salvage t = Engine.scrub_salvage t.e
  let media_spans t = Engine.media_spans t.e
  let allocator_check t = Engine.allocator_check t.e
end
