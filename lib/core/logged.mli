(** RomulusLog: twin-copy engine with the volatile redo log of §4.7 (only
    modified ranges are replicated), flat combining + C-RW-WP — the
    paper's "RomL" and its recommended default. *)

include Ptm_intf.S

val engine : t -> Engine.t
val recover : t -> unit
val recover_salvage : t -> (int * string) list
val scrub : t -> Engine.scrub_report
val scrub_salvage : t -> Engine.scrub_report
val media_spans : t -> (int * int) list
val allocator_check : t -> (unit, string) result
