(** Synchronization models for the multi-thread throughput extrapolation:
    virtual threads run a closed loop of operations whose costs were
    measured from the real single-threaded code; each model reproduces
    the blocking/aggregation/abort semantics of one PTM family
    (DESIGN.md). *)

type costs = {
  read_ns : float;         (** one read-only transaction *)
  update_work_ns : float;  (** in-transaction cost of one update *)
  batch_fixed_ns : float;  (** per-transaction fixed cost (fences, sync) *)
  think_ns : float;        (** gap between operations of a thread *)
}

(** How {!Fc_sharded} commits a cross-shard batch.
    [Proto_centralized]: PREPARE through shard 0, one apply per
    participant, COMMIT+CLEAR through shard 0 — four dependent combiner
    slots, two serialized through shard 0.  [Proto_decentralized]: the
    participants' mirror+apply transactions run concurrently, then one
    COMMIT flip through the coordinator (the min participant); with
    [lazy_clear] the chain ends there, otherwise each participant pays a
    concurrent CLEAR transaction and the coordinator a final
    flip-clear. *)
type sharded_protocol =
  | Proto_centralized
  | Proto_decentralized of { lazy_clear : bool }

(** Multi-chunk payload element for {!Fc_sharded}: with probability
    [large_p] a cross-shard batch carries a large payload of [chunks]
    chunk transactions per participant, [chunk_tx_ns] each, beyond the
    uniform per-update work.  With [streamed] the chunks run as
    separate dependent combiner slots (the chunked PREPARE chain of the
    sharded store), so small updates on the same shard interleave
    between them; without it the whole payload occupies one monolithic
    combiner slot and every request queued behind it waits the payload
    out — the occupancy the streamed chain exists to break up.  Under
    {!Proto_centralized} the payload always rides shard 0's single
    PREPARE monolithically (that protocol has no streaming). *)
type large_batch = {
  large_p : float;
  chunks : int;
  chunk_tx_ns : float;
  streamed : bool;
}

(** Background shard migration for {!Fc_sharded}: at
    [start_frac * duration] an online resize opens (one intent
    transaction through shard 0's combiner), then streams
    [move_batches] move batches — each one transaction on the source
    (shard 0) followed by one on the freshly-attached target (an extra
    combiner that takes no foreground traffic), [move_tx_ns] of payload
    work each — and closes with the epoch-flip transaction through
    shard 0.  The batches ride the ordinary combiner queues, so
    foreground operations on the source interleave with the stream and
    pay the occupancy: the resize-under-load throughput dip the shards
    bench measures. *)
type resize = {
  move_batches : int;
  move_tx_ns : float;
  start_frac : float;
}

(** How {!Fc_group}'s front-end acknowledges a submission.  [Ack_sync]
    is the per-transaction baseline: the submitter blocks and every
    logical transaction settles in its own engine round (every
    committer pays the full fence budget alone).  [Ack_batch_txs n]
    lets the submitter continue after enqueue and drains a queue once
    it holds [n] entries; [Ack_async] acknowledges at enqueue and
    drains only when the window fills. *)
type group_ack =
  | Ack_sync
  | Ack_batch_txs of int
  | Ack_async

type model =
  | Fc_crwwp
      (** flat combining + C-RW-WP writer-preference lock (Rom, RomL):
          one combiner executes the queued updates as a single durable
          batch; readers step aside for writers *)
  | Fc_left_right
      (** same single combiner, but readers never block; the writer
          drains readers on each of its two toggles (RomLR) *)
  | Fc_sharded of {
      shards : int;
      cross_p : float;
      intent_fixed_ns : float;
      protocol : sharded_protocol;
      large : large_batch option;
      resize : resize option;
    }
      (** [shards] independent {!Fc_crwwp} instances (Sharded_db): each
          operation routes to a uniformly random shard, so updates on
          different shards combine and commit concurrently.  With
          probability [cross_p] a writer runs a cross-shard batch
          instead, following [protocol] with [intent_fixed_ns] of
          serialized protocol bookkeeping; [large] optionally gives a
          fraction of those batches a multi-chunk payload (see
          {!large_batch}); [resize] optionally runs a background shard
          migration through the combiners (see {!resize}) *)
  | Fc_group of {
      shards : int;
      window : int;
      ack : group_ack;
      cross_p : float;
      intent_fixed_ns : float;
    }
      (** the async group-commit front-end over the sharded store
          (Group_commit): per-shard submission queues plus one
          cross-shard queue, each drained in windows of up to [window]
          logical transactions settled as one engine round —
          [batch_fixed_ns] (the fence sequence) is paid once per round,
          [update_work_ns] once per logical transaction.  A cross-queue
          round pays [intent_fixed_ns] plus two participant mirrors
          plus one coordinator flip for the whole merged group.
          Non-blocking submitters park when a queue reaches twice the
          window, bounding the queues.  [small_mean_ns]/[small_max_ns]
          track enqueue-to-durable completion latency of single-key
          updates — the latency cost of the deferred-ack modes. *)
  | Rw_reader_pref of { atomic_ns : float }
      (** plain reader-preference RW lock (the paper's PMDK setup).
          [atomic_ns] is the serialized cost of one RMW on the shared
          reader counter, which caps total read throughput; writers wait
          for a zero-reader instant and starve under many readers *)
  | Stm of {
      conflict_p : float;
      read_conflict_p : float;
      commit_serial_ns : float;
    }
      (** optimistic fine-grained STM (Mnemosyne/TinySTM): an update
          aborts with probability [1 - (1-conflict_p)^k] given [k]
          overlapping commits; the durable phase ([commit_serial_ns]) is
          serialized over the shared persistent log *)

type config = {
  model : model;
  costs : costs;
  readers : int;
  writers : int;
  duration_ns : float;
  seed : int;
}

type result = {
  reads_done : int;
  updates_done : int;
  elapsed_ns : float;
  small_mean_ns : float;
      (** mean single-key-update completion latency (submission to
          durable finish); tracked by {!Fc_sharded} only, 0 elsewhere *)
  small_max_ns : float;
      (** worst single-key-update completion latency — the tail the
          streamed-vs-monolithic large-batch ablation measures *)
}

val run : config -> result

val reads_per_sec : result -> float
val updates_per_sec : result -> float
val ops_per_sec : result -> float

(** Plausible defaults for tests. *)
val default_costs : costs
