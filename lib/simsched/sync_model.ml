(* Synchronization models for the throughput extrapolation (DESIGN.md):
   virtual threads execute a closed loop of operations whose costs were
   measured from the real single-threaded code; each model reproduces the
   blocking/aggregation/abort semantics of one PTM family.

   - Fc_crwwp: flat combining + C-RW-WP writer-preference lock
     (Romulus, RomulusLog).  One combiner executes the whole queue of
     pending updates in a single durable transaction: batch cost =
     batch_fixed + B * update_work.  Readers step aside for writers.
   - Fc_left_right: same single combiner, but readers never block; the
     writer pays up to one read duration per toggle (twice per batch) to
     drain readers (RomulusLR).
   - Fc_sharded: N independent Fc_crwwp instances, one per hash shard
     of the sharded store.  Each operation routes to a uniformly random
     shard, so single-key updates on different shards combine and commit
     concurrently.  A cross-shard batch (probability cross_p) follows
     the store's commit protocol:
       Proto_centralized — a PREPARE transaction through shard 0's
       combiner, one apply per participating shard, then a COMMIT+CLEAR
       transaction through shard 0 again: four dependent combiner slots,
       two of them through shard 0, which makes shard 0 the serial
       bottleneck the shards bench demonstrates.
       Proto_decentralized — the per-shard intent mirrors are written
       *concurrently* (each participant's mirror+apply is one ordinary
       transaction on its own shard), then one COMMIT flip rides the
       coordinator's combiner (the min participant).  With lazy_clear
       the chain ends there — stale records are reclaimed inside later
       protocol transactions at no extra slot; with eager clear each
       participant pays one more concurrent transaction and the
       coordinator a final flip-clear.
     Either way the chain carries a protocol-specific fixed cost
     (payload encoding, undo capture) and counts as one update.
   - Rw_reader_pref: a plain reader-preference RW lock, one transaction
     per lock acquisition (the paper's PMDK setup).  Writers wait for a
     moment with zero active readers, which becomes rarer as readers are
     added — the Figure 7 starvation.
   - Stm: optimistic fine-grained concurrency (Mnemosyne/TinySTM):
     no global lock; an update transaction aborts and retries with
     probability 1 - (1-conflict_p)^k where k is the number of commits
     that overlapped it (the shared-counter hash map has conflict_p = 1,
     which is Figure 5's collapse).

   Threads have a small think time between operations; without it a
   closed loop of readers would occupy a reader-preference lock
   permanently, when in reality writers slip in during the gaps. *)

type costs = {
  read_ns : float;         (* one read-only transaction *)
  update_work_ns : float;  (* in-transaction cost of one update *)
  batch_fixed_ns : float;  (* per-transaction fixed cost (fences, sync) *)
  think_ns : float;        (* gap between operations of a thread *)
}

type sharded_protocol =
  | Proto_centralized
  | Proto_decentralized of { lazy_clear : bool }

type large_batch = {
  large_p : float;
  chunks : int;
  chunk_tx_ns : float;
  streamed : bool;
}

(* Background shard migration: an intent tx through shard 0, then
   [move_batches] dependent source-tx/target-tx pairs (the target is an
   extra combiner carrying no foreground traffic), then the epoch-flip
   tx through shard 0 — the move stream rides the ordinary combiner
   queues, so foreground load on the source pays the occupancy. *)
type resize = {
  move_batches : int;
  move_tx_ns : float;
  start_frac : float;
}

(* How the group-commit front-end acknowledges a submission (Fc_group).
   Ack_sync is the per-transaction baseline: the submitter blocks and
   every logical transaction is settled in its own engine round, so
   every committer pays the full fence budget alone — "today's"
   serving path.  Ack_batch_txs/Ack_async let the submitter continue
   after enqueue; the queue drains in windows, amortizing one fence
   sequence (and, on the cross queue, one shared intent record) over
   the whole group. *)
type group_ack =
  | Ack_sync
  | Ack_batch_txs of int
  | Ack_async

type model =
  | Fc_crwwp
  | Fc_left_right
  | Fc_sharded of {
      shards : int;
      cross_p : float;
      (** probability that a writer's operation is a cross-shard batch
          (two participating shards) rather than a single-key update *)
      intent_fixed_ns : float;
      (** serialized extra cost of the commit protocol's bookkeeping:
          payload encoding, undo capture, record management — measured
          per protocol by the bench calibration *)
      protocol : sharded_protocol;
      large : large_batch option;
      (** multi-chunk payload element: with probability [large_p] a
          cross-shard batch carries [chunks] chunk transactions per
          participant, [chunk_tx_ns] each.  [streamed] runs them as
          separate dependent combiner slots (the chunked PREPARE
          chain); otherwise the whole payload holds one monolithic
          combiner slot and everything queued behind it waits *)
      resize : resize option;
      (** background online shard migration through the combiners *)
    }
  | Fc_group of {
      shards : int;
      window : int;
      (** max logical transactions coalesced into one engine round *)
      ack : group_ack;
      cross_p : float;
      (** probability a submission is a cross-shard batch, routed to the
          shared cross queue instead of a per-shard queue *)
      intent_fixed_ns : float;
      (** serialized bookkeeping of one shared intent record (paid once
          per cross-queue drain, not once per merged batch) *)
    }
    (** the group-commit front-end over the sharded store: per-shard
        submission queues plus one cross-shard queue, each drained in
        windows of up to [window] logical transactions settled as one
        engine round — batch_fixed (the fence sequence) is paid per
        round, update_work per logical transaction.  A cross-queue
        round pays one mirror transaction per participant (modeled as
        two) and one coordinator flip for the whole merged group. *)
  | Rw_reader_pref of { atomic_ns : float }
    (** [atomic_ns]: serialized cost of one RMW on the lock's shared
        reader counter — the cache line bounces between cores, so total
        read throughput saturates near [1 / (2 * atomic_ns)] regardless
        of the thread count (every read does arrive + depart). *)
  | Stm of {
      conflict_p : float;
      read_conflict_p : float;
      commit_serial_ns : float;
      (** durable-commit section (log persist + write-back + fences),
          serialized over the shared persistent log *)
    }

type config = {
  model : model;
  costs : costs;
  readers : int;
  writers : int;
  duration_ns : float;
  seed : int;
}

type result = {
  reads_done : int;
  updates_done : int;
  elapsed_ns : float;
  small_mean_ns : float;
  small_max_ns : float;
}

(* Uniform jitter in [0.5, 1.5) x base, mean-preserving: without it the
   identical per-op costs phase-lock every thread onto the same event
   instants, and e.g. a reader-preference lock spuriously admits writers
   at the synchronized all-readers-departed tick. *)
let jitter sim base = base *. (0.5 +. Des.random sim)

let reads_per_sec r = float_of_int r.reads_done /. (r.elapsed_ns *. 1e-9)
let updates_per_sec r = float_of_int r.updates_done /. (r.elapsed_ns *. 1e-9)
let ops_per_sec r =
  float_of_int (r.reads_done + r.updates_done) /. (r.elapsed_ns *. 1e-9)

(* ---- Flat combining + C-RW-WP / Left-Right ---- *)

let run_fc ~left_right cfg =
  let sim = Des.create ~seed:cfg.seed () in
  let c = cfg.costs in
  let reads_done = ref 0 and updates_done = ref 0 in
  (* lock state *)
  let combiner_active = ref false in
  let writer_pending = ref false in
  let readers_active = ref 0 in
  let pending_updates = Queue.create () in (* completion callbacks *)
  let waiting_readers = Queue.create () in
  let rec try_start_batch () =
    if (not !combiner_active) && not (Queue.is_empty pending_updates) then begin
      if left_right then start_batch ()
      else begin
        (* C-RW-WP: the writer first drains the readers *)
        writer_pending := true;
        if !readers_active = 0 then start_batch ()
        (* else: the last departing reader calls [reader_departed] *)
      end
    end
  and start_batch () =
    combiner_active := true;
    writer_pending := false;
    let batch = Queue.create () in
    Queue.transfer pending_updates batch;
    let b = float_of_int (Queue.length batch) in
    let drain =
      (* LR waits out the readers on each of its two toggles; readers all
         run for read_ns, so a full drain costs at most one read *)
      if left_right && !readers_active > 0 then 2. *. c.read_ns else 0.
    in
    let cost = c.batch_fixed_ns +. (b *. c.update_work_ns) +. drain in
    Des.schedule sim cost (fun () ->
        Queue.iter
          (fun finish ->
            incr updates_done;
            finish ())
          batch;
        combiner_active := false;
        (* release blocked readers *)
        Queue.iter (fun resume -> resume ()) waiting_readers;
        Queue.clear waiting_readers;
        try_start_batch ())
  and reader_departed () =
    readers_active := !readers_active - 1;
    if !readers_active = 0 && !writer_pending && not !combiner_active then
      start_batch ()
  in
  let rec reader_loop () =
    Des.schedule sim (jitter sim c.think_ns) (fun () ->
        if left_right then begin
          (* wait-free: never blocks *)
          readers_active := !readers_active + 1;
          Des.schedule sim c.read_ns (fun () ->
              incr reads_done;
              readers_active := !readers_active - 1;
              reader_loop ())
        end
        else if !combiner_active || !writer_pending then
          (* writer preference: stand aside until the writer releases *)
          Queue.add
            (fun () ->
              readers_active := !readers_active + 1;
              Des.schedule sim c.read_ns (fun () ->
                  incr reads_done;
                  reader_departed ();
                  reader_loop ()))
            waiting_readers
        else begin
          readers_active := !readers_active + 1;
          Des.schedule sim c.read_ns (fun () ->
              incr reads_done;
              reader_departed ();
              reader_loop ())
        end)
  in
  let rec writer_loop () =
    Des.schedule sim (jitter sim c.think_ns) (fun () ->
        Queue.add (fun () -> writer_loop ()) pending_updates;
        try_start_batch ())
  in
  for _ = 1 to cfg.readers do
    reader_loop ()
  done;
  for _ = 1 to cfg.writers do
    writer_loop ()
  done;
  Des.run sim ~until:cfg.duration_ns;
  { reads_done = !reads_done; updates_done = !updates_done;
    elapsed_ns = cfg.duration_ns; small_mean_ns = 0.; small_max_ns = 0. }

(* ---- sharded flat combining (Sharded_db) ---- *)

(* N independent Fc_crwwp instances.  Single-key operations route to a
   uniformly random shard and follow exactly the run_fc machinery, just
   per shard.  A cross-shard batch is a dependency graph of sub-requests,
   each riding the target shard's ordinary combining queue, plus
   [intent_fixed_ns] of serialized protocol bookkeeping; the graph's
   shape depends on the commit protocol (see the header).  The whole
   graph counts as one update. *)
let run_fc_sharded ~shards ~cross_p ~intent_fixed_ns ~protocol ~large ~resize
    cfg =
  if shards < 1 then invalid_arg "Sync_model: shards < 1";
  let sim = Des.create ~seed:cfg.seed () in
  let c = cfg.costs in
  let reads_done = ref 0 and updates_done = ref 0 in
  (* single-key update completion latency (submission to durable finish):
     the figure the streamed-vs-monolithic large-batch ablation is about *)
  let small_n = ref 0 in
  let small_sum = ref 0. in
  let small_max = ref 0. in
  (* per-shard C-RW-WP + flat-combining state; a pending sub-request is
     (extra_ns, finish) — extra_ns is payload work beyond the uniform
     per-update cost (chunk streaming, monolithic payloads).  A resize
     adds one more station: the migration target's combiner, which takes
     no foreground traffic during the stream. *)
  let stations = shards + (match resize with Some _ -> 1 | None -> 0) in
  let combiner_active = Array.make stations false in
  let writer_pending = Array.make stations false in
  let readers_active = Array.make stations 0 in
  let pending = Array.init stations (fun _ -> Queue.create ()) in
  let waiting_readers = Array.init stations (fun _ -> Queue.create ()) in
  let rec try_start_batch s =
    if (not combiner_active.(s)) && not (Queue.is_empty pending.(s)) then begin
      writer_pending.(s) <- true;
      if readers_active.(s) = 0 then start_batch s
      (* else: the last departing reader calls [reader_departed] *)
    end
  and start_batch s =
    combiner_active.(s) <- true;
    writer_pending.(s) <- false;
    let batch = Queue.create () in
    Queue.transfer pending.(s) batch;
    let b = float_of_int (Queue.length batch) in
    let extra = Queue.fold (fun acc (e, _) -> acc +. e) 0. batch in
    let cost = c.batch_fixed_ns +. (b *. c.update_work_ns) +. extra in
    Des.schedule sim cost (fun () ->
        Queue.iter (fun (_, finish) -> finish ()) batch;
        combiner_active.(s) <- false;
        Queue.iter (fun resume -> resume ()) waiting_readers.(s);
        Queue.clear waiting_readers.(s);
        try_start_batch s)
  and reader_departed s =
    readers_active.(s) <- readers_active.(s) - 1;
    if readers_active.(s) = 0 && writer_pending.(s)
       && not combiner_active.(s)
    then start_batch s
  in
  (* enqueue one sub-request on shard [s]; [finish] runs when the shard's
     combiner has durably applied it *)
  let submit ?(extra = 0.) s finish =
    Queue.add (extra, finish) pending.(s);
    try_start_batch s
  in
  (* one participant's PREPARE when the batch carries a large payload:
     streamed — [chunks] dependent combiner slots, one chunk each, so
     other requests on the shard interleave between them (the last slot
     is the seal+apply); monolithic — the whole payload holds a single
     slot and everything queued behind it waits the payload out *)
  let prepare_large l s k =
    if l.streamed then begin
      let rec chain n =
        if n = 0 then k ()
        else submit ~extra:l.chunk_tx_ns s (fun () -> chain (n - 1))
      in
      chain l.chunks
    end
    else
      submit ~extra:(float_of_int l.chunks *. l.chunk_tx_ns) s (fun () ->
          k ())
  in
  let pick_shard () =
    min (shards - 1) (int_of_float (Des.random sim *. float_of_int shards))
  in
  let rec reader_loop () =
    Des.schedule sim (jitter sim c.think_ns) (fun () ->
        let s = pick_shard () in
        if combiner_active.(s) || writer_pending.(s) then
          (* writer preference: stand aside until the combiner releases *)
          Queue.add (fun () -> start_read s) waiting_readers.(s)
        else start_read s)
  and start_read s =
    readers_active.(s) <- readers_active.(s) + 1;
    Des.schedule sim c.read_ns (fun () ->
        incr reads_done;
        reader_departed s;
        reader_loop ())
  in
  let rec writer_loop () =
    Des.schedule sim (jitter sim c.think_ns) (fun () ->
        if shards > 1 && cross_p > 0. && Des.random sim < cross_p then begin
          (* cross-shard batch over two distinct shards *)
          let a = pick_shard () in
          let b =
            (a + 1
             + min (shards - 2)
                 (int_of_float (Des.random sim *. float_of_int (shards - 1))))
            mod shards
          in
          let finish () =
            Des.schedule sim intent_fixed_ns (fun () ->
                incr updates_done;
                writer_loop ())
          in
          (* the payload size is a property of the batch, not of one
             participant: decide once *)
          let batch_large =
            match large with
            | Some l when l.large_p > 0. && Des.random sim < l.large_p ->
              Some l
            | _ -> None
          in
          (* a barrier over the two participants' concurrent requests *)
          let join n k =
            let left = ref n in
            fun () ->
              decr left;
              if !left = 0 then k ()
          in
          match protocol with
          | Proto_centralized ->
            (* the centralized intent has no streaming: the whole
               payload (both slices) rides shard 0's single PREPARE *)
            let prep_extra =
              match batch_large with
              | Some l -> 2. *. float_of_int l.chunks *. l.chunk_tx_ns
              | None -> 0.
            in
            submit ~extra:prep_extra 0 (fun () -> (* PREPARE intent *)
                submit a (fun () ->             (* apply on shard a *)
                    submit b (fun () ->         (* apply on shard b *)
                        submit 0 (fun () ->     (* COMMIT flip + CLEAR *)
                            finish ()))))
          | Proto_decentralized { lazy_clear } ->
            let coord = min a b in
            let prepare s k =
              match batch_large with
              | Some l -> prepare_large l s k
              | None -> submit s (fun () -> k ())
            in
            (* mirrors+applies run concurrently, one tx per participant
               (a chain of chunk transactions when the batch is large
               and streamed) *)
            let mirrors_done =
              join 2 (fun () ->
                  submit coord (fun () ->       (* COMMIT flip *)
                      if lazy_clear then finish ()
                      else
                        (* eager CLEAR: concurrent mirror unhooks, then
                           the coordinator reclaims its flip *)
                        let clears_done =
                          join 2 (fun () -> submit coord finish)
                        in
                        submit a clears_done;
                        submit b clears_done))
            in
            prepare a (fun () -> mirrors_done ());
            prepare b (fun () -> mirrors_done ())
        end
        else begin
          let t0 = Des.now sim in
          submit (pick_shard ()) (fun () ->
              let lat = Des.now sim -. t0 in
              incr small_n;
              small_sum := !small_sum +. lat;
              if lat > !small_max then small_max := lat;
              incr updates_done;
              writer_loop ())
        end)
  in
  for _ = 1 to cfg.readers do
    reader_loop ()
  done;
  for _ = 1 to cfg.writers do
    writer_loop ()
  done;
  (* the background migration: intent on shard 0, a dependent chain of
     source-tx/target-tx move pairs (source is shard 0, the protocol
     anchor; the target is the extra station), and the epoch flip back
     through shard 0 — every slot queued like any other request, which
     is exactly why foreground throughput dips while the stream runs *)
  (match resize with
   | None -> ()
   | Some r ->
     if r.move_batches < 0 then invalid_arg "Sync_model: move_batches < 0";
     let tgt = shards in
     Des.schedule sim (r.start_frac *. cfg.duration_ns) (fun () ->
         submit 0 (fun () ->
             let rec move n =
               if n = 0 then submit 0 (fun () -> ())
               else
                 submit ~extra:r.move_tx_ns 0 (fun () ->
                     submit ~extra:r.move_tx_ns tgt (fun () ->
                         move (n - 1)))
             in
             move r.move_batches)));
  Des.run sim ~until:cfg.duration_ns;
  { reads_done = !reads_done; updates_done = !updates_done;
    elapsed_ns = cfg.duration_ns;
    small_mean_ns =
      (if !small_n = 0 then 0. else !small_sum /. float_of_int !small_n);
    small_max_ns = !small_max }

(* ---- group-commit front-end (Group_commit over Sharded_db) ---- *)

(* Per-shard submission queues plus one cross-shard queue, each drained
   in windows settled as one engine round.  Ack_sync pins the take size
   to 1 — the per-transaction baseline where every committer pays the
   fence budget alone and the submitter blocks until its own flip.
   Ack_batch_txs/Ack_async submitters continue after enqueue (the ack
   rides the watermark / is given at enqueue), so the queue reaches the
   drain threshold and one batch_fixed (fence sequence) amortizes over
   up to [window] logical transactions; a cross-queue round pays
   [intent_fixed_ns] plus two mirror transactions plus one coordinator
   flip for the whole merged group.  Non-blocking submitters park when
   a queue is at twice the window (the real layer's drain-on-full does
   the same work from the submitter's thread), which bounds the queue
   and keeps the loop closed. *)
let run_fc_group ~shards ~window ~ack ~cross_p ~intent_fixed_ns cfg =
  if shards < 1 then invalid_arg "Sync_model: shards < 1";
  if window < 1 then invalid_arg "Sync_model: window < 1";
  let sim = Des.create ~seed:cfg.seed () in
  let c = cfg.costs in
  let reads_done = ref 0 and updates_done = ref 0 in
  let small_n = ref 0 and small_sum = ref 0. and small_max = ref 0. in
  let stations = shards + 1 in
  let cross = shards in
  let take_sz, threshold =
    match ack with
    | Ack_sync -> (1, 1)
    | Ack_batch_txs n -> (window, max 1 (min n window))
    | Ack_async -> (window, window)
  in
  let cap = 2 * window in
  (* queue entry: (enqueue instant, completion continuation for a
     blocking submitter) *)
  let queued = Array.init stations (fun _ -> Queue.create ()) in
  let draining = Array.make stations false in
  let parked = Array.init stations (fun _ -> Queue.create ()) in
  let rec maybe_drain s =
    if (not draining.(s)) && Queue.length queued.(s) >= threshold then begin
      draining.(s) <- true;
      let k = min take_sz (Queue.length queued.(s)) in
      let batch = Array.init k (fun _ -> Queue.pop queued.(s)) in
      let kf = float_of_int k in
      let cost =
        if s = cross then
          (* one shared intent: two participant mirrors + one flip for
             the whole merged group, each slice's work per batch *)
          intent_fixed_ns +. (3. *. c.batch_fixed_ns)
          +. (kf *. 2. *. c.update_work_ns)
        else c.batch_fixed_ns +. (kf *. c.update_work_ns)
      in
      Des.schedule sim cost (fun () ->
          Array.iter
            (fun (t0, finish) ->
              incr updates_done;
              if s <> cross then begin
                let lat = Des.now sim -. t0 in
                incr small_n;
                small_sum := !small_sum +. lat;
                if lat > !small_max then small_max := lat
              end;
              match finish with Some resume -> resume () | None -> ())
            batch;
          draining.(s) <- false;
          let admitted = Queue.create () in
          Queue.transfer parked.(s) admitted;
          Queue.iter (fun resume -> resume ()) admitted;
          maybe_drain s)
    end
  in
  (* [blocking]: Ack_sync rides the entry's completion; the others
     resume right after enqueue, parking at the cap *)
  let rec submit s ~blocking resume =
    if (not blocking) && Queue.length queued.(s) >= cap then
      Queue.add (fun () -> submit s ~blocking resume) parked.(s)
    else begin
      Queue.add
        (Des.now sim, if blocking then Some resume else None)
        queued.(s);
      maybe_drain s;
      if not blocking then resume ()
    end
  in
  let pick_shard () =
    min (shards - 1) (int_of_float (Des.random sim *. float_of_int shards))
  in
  let blocking = ack = Ack_sync in
  let rec writer_loop () =
    Des.schedule sim (jitter sim c.think_ns) (fun () ->
        let s =
          if shards > 1 && cross_p > 0. && Des.random sim < cross_p then
            cross
          else pick_shard ()
        in
        submit s ~blocking writer_loop)
  in
  (* reads bypass the queues (the front-end is read-your-writes without
     forcing a drain), so a reader just pays the store's read cost *)
  let rec reader_loop () =
    Des.schedule sim (jitter sim c.think_ns) (fun () ->
        Des.schedule sim c.read_ns (fun () ->
            incr reads_done;
            reader_loop ()))
  in
  for _ = 1 to cfg.readers do
    reader_loop ()
  done;
  for _ = 1 to cfg.writers do
    writer_loop ()
  done;
  Des.run sim ~until:cfg.duration_ns;
  { reads_done = !reads_done; updates_done = !updates_done;
    elapsed_ns = cfg.duration_ns;
    small_mean_ns =
      (if !small_n = 0 then 0. else !small_sum /. float_of_int !small_n);
    small_max_ns = !small_max }

(* ---- reader-preference RW lock (PMDK setup) ---- *)

let run_rw_reader_pref ~atomic_ns cfg =
  let sim = Des.create ~seed:cfg.seed () in
  let c = cfg.costs in
  let reads_done = ref 0 and updates_done = ref 0 in
  let writer_holding = ref false in
  let readers_active = ref 0 in
  let waiting_writers = Queue.create () in
  let waiting_readers = Queue.create () in
  let update_cost = c.batch_fixed_ns +. c.update_work_ns in
  (* the shared reader counter: RMWs on its cache line serialize *)
  let counter_free = ref 0. in
  let counter_hop () =
    let start = max (Des.now sim) !counter_free in
    let finish = start +. atomic_ns in
    counter_free := finish;
    finish -. Des.now sim
  in
  let rec maybe_admit_writer () =
    (* a writer may proceed only at an instant with no active readers and
       no writer holding; merely-waiting writers do not block readers *)
    if (not !writer_holding) && !readers_active = 0
       && not (Queue.is_empty waiting_writers)
    then begin
      writer_holding := true;
      let finish = Queue.take waiting_writers in
      Des.schedule sim update_cost (fun () ->
          incr updates_done;
          writer_holding := false;
          (* release: admit everyone who queued behind the writer *)
          let rs = Queue.copy waiting_readers in
          Queue.clear waiting_readers;
          Queue.iter (fun resume -> resume ()) rs;
          maybe_admit_writer ();
          finish ())
    end
  in
  let rec reader_loop () =
    Des.schedule sim (jitter sim c.think_ns) (fun () ->
        if !writer_holding then
          Queue.add (fun () -> start_read ()) waiting_readers
        else start_read ())
  and start_read () =
    (* reader preference: the reader counts as arrived immediately (so a
       pack of readers released together blocks the next writer), then
       pays the serialized arrive RMW, the read, and the depart RMW *)
    readers_active := !readers_active + 1;
    Des.schedule sim (counter_hop ()) (fun () ->
        Des.schedule sim c.read_ns (fun () ->
            Des.schedule sim (counter_hop ()) (fun () ->
                incr reads_done;
                readers_active := !readers_active - 1;
                maybe_admit_writer ();
                reader_loop ())))
  in
  let rec writer_loop () =
    Des.schedule sim (jitter sim c.think_ns) (fun () ->
        Queue.add (fun () -> writer_loop ()) waiting_writers;
        maybe_admit_writer ())
  in
  for _ = 1 to cfg.readers do
    reader_loop ()
  done;
  for _ = 1 to cfg.writers do
    writer_loop ()
  done;
  Des.run sim ~until:cfg.duration_ns;
  { reads_done = !reads_done; updates_done = !updates_done;
    elapsed_ns = cfg.duration_ns; small_mean_ns = 0.; small_max_ns = 0. }

(* ---- optimistic STM (Mnemosyne setup) ---- *)

let run_stm ~conflict_p ~read_conflict_p ~commit_serial_ns cfg =
  let sim = Des.create ~seed:cfg.seed () in
  let c = cfg.costs in
  let reads_done = ref 0 and updates_done = ref 0 in
  let commit_count = ref 0 in
  let update_cost =
    max 0. (c.batch_fixed_ns +. c.update_work_ns -. commit_serial_ns)
  in
  (* the durable phase persists the redo log: serialized across threads *)
  let commit_free = ref 0. in
  let commit_slot () =
    let start = max (Des.now sim) !commit_free in
    let finish = start +. commit_serial_ns in
    commit_free := finish;
    finish -. Des.now sim
  in
  let abort_probability p started =
    let overlapping = !commit_count - started in
    if overlapping <= 0 || p <= 0. then 0.
    else 1. -. ((1. -. p) ** float_of_int overlapping)
  in
  let rec reader_loop attempt =
    let delay =
      if attempt = 0 then c.think_ns
      else c.think_ns *. float_of_int (min attempt 8)
    in
    Des.schedule sim (jitter sim delay) (fun () ->
        let started = !commit_count in
        Des.schedule sim c.read_ns (fun () ->
            if Des.random sim < abort_probability read_conflict_p started
            then reader_loop (attempt + 1)
            else begin
              incr reads_done;
              reader_loop 0
            end))
  in
  let rec writer_loop attempt =
    let delay =
      if attempt = 0 then c.think_ns
      else c.think_ns *. float_of_int (min attempt 8)
    in
    Des.schedule sim (jitter sim delay) (fun () ->
        let started = !commit_count in
        Des.schedule sim update_cost (fun () ->
            if Des.random sim < abort_probability conflict_p started then
              writer_loop (attempt + 1)
            else
              (* survived validation: enter the serialized durable phase *)
              Des.schedule sim (commit_slot ()) (fun () ->
                  incr commit_count;
                  incr updates_done;
                  writer_loop 0)))
  in
  for _ = 1 to cfg.readers do
    reader_loop 0
  done;
  for _ = 1 to cfg.writers do
    writer_loop 0
  done;
  Des.run sim ~until:cfg.duration_ns;
  { reads_done = !reads_done; updates_done = !updates_done;
    elapsed_ns = cfg.duration_ns; small_mean_ns = 0.; small_max_ns = 0. }

let run cfg =
  match cfg.model with
  | Fc_crwwp -> run_fc ~left_right:false cfg
  | Fc_left_right -> run_fc ~left_right:true cfg
  | Fc_sharded { shards; cross_p; intent_fixed_ns; protocol; large; resize }
    ->
    run_fc_sharded ~shards ~cross_p ~intent_fixed_ns ~protocol ~large ~resize
      cfg
  | Fc_group { shards; window; ack; cross_p; intent_fixed_ns } ->
    run_fc_group ~shards ~window ~ack ~cross_p ~intent_fixed_ns
      cfg
  | Rw_reader_pref { atomic_ns } -> run_rw_reader_pref ~atomic_ns cfg
  | Stm { conflict_p; read_conflict_p; commit_serial_ns } ->
    run_stm ~conflict_p ~read_conflict_p ~commit_serial_ns cfg

let default_costs =
  { read_ns = 300.; update_work_ns = 600.; batch_fixed_ns = 400.;
    think_ns = 30. }
