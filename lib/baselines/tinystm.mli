(** TinySTM/TL2-style STM mechanics: a global version clock and striped
    versioned write-locks.  {!Redolog} composes this with a persistent
    redo log the way Mnemosyne composes TinySTM with its durable log. *)

(** Raised (internally) to abort and retry a transaction. *)
exception Abort

(** Raised by the STM-based PTMs after a bounded number of consecutive
    conflict aborts (with exponential backoff and jitter between
    attempts): a typed, recoverable contention-livelock signal.  The
    transaction's buffered effects are discarded; the caller may simply
    retry. *)
exception Contention_exhausted of { attempts : int }

type t

val create : ?bits:int -> unit -> t

(** Stripe index for a word address. *)
val stripe : t -> int -> int

(** Current global version. *)
val now : t -> int

(** Atomically advance the clock; returns the new version. *)
val next_version : t -> int

(** Raw lock word of a stripe. *)
val read_word : t -> int -> int

val is_locked : int -> bool
val version : int -> int

(** Try to lock a stripe; [Some prev_version] on success. *)
val try_acquire : t -> int -> int option

(** Release a stripe, publishing a new version. *)
val release : t -> int -> ver:int -> unit

(** Release a stripe without changing its version (abort path). *)
val release_unchanged : t -> int -> prev_version:int -> unit

val record_abort : t -> unit
val aborts : t -> int

(** Forget all volatile state (simulated process restart). *)
val reset : t -> unit
