(* Undo-log PTM in the style of PMDK's libpmemobj (§2, §6.1): a write-ahead
   undo log in persistent memory.  Before the first in-place store to an
   address within a transaction, the old value is persisted to the log
   (entry + count durable *before* the in-place modification — one
   persistence fence per logged store, which is why undo logs pay
   2 + 3*N_ranges fences in Table 1, and why PMDK looks competitive on a
   CLFLUSH machine where fences are free).

   Concurrency follows the paper's evaluation setup for PMDK: a global
   reader-preference reader-writer lock (std::shared_timed_mutex), no flat
   combining.

   Region layout:

     0        magic
     8        log_count    durable number of valid undo entries
     64       roots
     64+512   allocator arena ...
     size-L   undo log: entries of (address, old value), 16 bytes each

   The allocator runs over the same interposed store, so its metadata is
   undone together with user data — PMDK's allocator achieves the same
   effect with its internal redo logs. *)

open Sync_prims

let name = "pmdk"

let magic_value = 0x554E444F4C4F47 (* "UNDOLOG" *)

(* Failpoint: the undo entry is durable but the count that validates it
   is not — the WAL window the 3-fences-per-store schedule protects.  An
   injected exception here must abort the transaction: the entries
   logged so far roll every in-place store back. *)
let fp_entry_logged = Fault.site ~can_raise:true "pmdk.log.entry_logged"
let fp_rollback_applied = Fault.site "pmdk.recover.rollback_applied"

let o_magic = 0
let o_log_count = 8
let header_bytes = 64
let roots_bytes = 8 * Romulus.Ptm_intf.root_slots
let entry_bytes = 16

exception Log_full

(* The transactional context doubles as the allocator's memory: allocator
   metadata stores are interposed exactly like user stores. *)
module Ctx = struct
  type t = {
    r : Pmem.Region.t;
    log_base : int;
    log_capacity : int;
    mutable in_tx : bool;
    mutable log_len : int;
    logged : (int, unit) Hashtbl.t; (* addresses logged this tx *)
  }

  let load c off = Pmem.Region.load c.r off

  let entry_addr c i = c.log_base + (i * entry_bytes)

  (* Persist (addr, old value) and bump the durable count, fenced, before
     the caller modifies [addr] in place (the WAL rule). *)
  let log_old_value c addr =
    if not (Hashtbl.mem c.logged addr) then begin
      if c.log_len >= c.log_capacity then raise Log_full;
      Hashtbl.replace c.logged addr ();
      let e = entry_addr c c.log_len in
      (* the old value is snapshotted as raw bytes: blob data may use all
         64 bits of a word, which OCaml's 63-bit int cannot carry *)
      let old = Pmem.Region.load_bytes c.r addr 8 in
      Pmem.Region.store c.r e addr;
      Pmem.Region.store_bytes c.r (e + 8) old;
      Pmem.Region.pwb_range c.r e entry_bytes;
      (* entry durable strictly before the count that makes it valid:
         otherwise an evicted count line could expose a garbage entry *)
      Pmem.Region.pfence c.r;
      Fault.hit fp_entry_logged;
      c.log_len <- c.log_len + 1;
      Pmem.Region.store c.r o_log_count c.log_len;
      Pmem.Region.pwb c.r o_log_count;
      Pmem.Region.pfence c.r
    end

  let store c off v =
    if not c.in_tx then raise Romulus.Engine.Store_outside_transaction;
    log_old_value c off;
    Pmem.Region.store c.r off v;
    Pmem.Region.pwb c.r off
end

module Alloc = Palloc.Make (Ctx)

type t = {
  ctx : Ctx.t;
  arena : Alloc.t;
  lock : Rwlock_rp.t;
}

let region t = t.ctx.Ctx.r

(* ---- recovery ---- *)

(* Validate the durable log header before trusting a single entry of it:
   the WAL discipline (entry fenced before count, count fenced before the
   in-place store) means a legitimate crash can never produce a count
   outside the log or an entry pointing outside the region.  If the
   medium says otherwise, it is corrupt — refuse, do not "roll back"
   through garbage addresses. *)
let validate_log r ~log_base ~log_capacity =
  let size = Pmem.Region.size r in
  let count = Pmem.Region.load r o_log_count in
  if count < 0 || count > log_capacity then
    raise
      (Romulus.Engine.Recovery_error
         (Printf.sprintf
            "Undolog.recover: log count %d outside [0, %d]" count
            log_capacity));
  for i = 0 to count - 1 do
    let e = log_base + (i * entry_bytes) in
    let addr = Pmem.Region.load r e in
    if addr < 0 || addr > size - 8 then
      raise
        (Romulus.Engine.Recovery_error
           (Printf.sprintf
              "Undolog.recover: entry %d undoes address %d outside region \
               of %d bytes"
              i addr size))
  done;
  count

let rollback r ~log_base ~log_capacity =
  let count = validate_log r ~log_base ~log_capacity in
  if count > 0 then begin
    (* apply undo entries in reverse *)
    for i = count - 1 downto 0 do
      let e = log_base + (i * entry_bytes) in
      let addr = Pmem.Region.load r e in
      let old = Pmem.Region.load_bytes r (e + 8) 8 in
      Pmem.Region.store_bytes r addr old;
      Pmem.Region.pwb r addr
    done;
    Fault.hit fp_rollback_applied;
    Pmem.Region.pfence r;
    Pmem.Region.store r o_log_count 0;
    Pmem.Region.pwb r o_log_count;
    Pmem.Region.pfence r
  end

(* ---- open/format ---- *)

let layout r =
  let size = Pmem.Region.size r in
  let log_bytes = max 4096 (size / 8) in
  let log_base = size - log_bytes in
  let arena_base = header_bytes + roots_bytes in
  if log_base - arena_base < Palloc.meta_bytes + 4096 then
    invalid_arg "Undolog: region too small";
  (arena_base, log_base, log_bytes / entry_bytes)

let open_region r =
  let arena_base, log_base, log_capacity = layout r in
  let ctx =
    { Ctx.r; log_base; log_capacity; in_tx = false; log_len = 0;
      logged = Hashtbl.create 64 }
  in
  let magic = Pmem.Region.load r o_magic in
  if magic <> 0 && magic <> magic_value then
    raise
      (Romulus.Engine.Recovery_error
         (Printf.sprintf "Undolog.open: unrecognized magic %#x" magic));
  if magic = magic_value then begin
    rollback r ~log_base ~log_capacity;
    { ctx; arena = Alloc.attach ctx ~base:arena_base;
      lock = Rwlock_rp.create () }
  end
  else begin
    (* format: run the initialization as one logged transaction, then
       retire the log and publish the magic last *)
    ctx.Ctx.in_tx <- true;
    Pmem.Region.store r o_log_count 0;
    let arena = Alloc.init ctx ~base:arena_base ~size:(log_base - arena_base) in
    ctx.Ctx.in_tx <- false;
    ctx.Ctx.log_len <- 0;
    Hashtbl.reset ctx.Ctx.logged;
    Pmem.Region.store r o_log_count 0;
    Pmem.Region.pwb_range r 0 log_base;
    Pmem.Region.pfence r;
    Pmem.Region.store r o_magic magic_value;
    Pmem.Region.pwb r o_magic;
    Pmem.Region.pfence r;
    { ctx; arena; lock = Rwlock_rp.create () }
  end

let recover t =
  t.ctx.Ctx.in_tx <- false;
  Hashtbl.reset t.ctx.Ctx.logged;
  rollback t.ctx.Ctx.r ~log_base:t.ctx.Ctx.log_base
    ~log_capacity:t.ctx.Ctx.log_capacity;
  t.ctx.Ctx.log_len <- 0

(* ---- transactions ---- *)

let begin_tx t =
  t.ctx.Ctx.in_tx <- true;
  t.ctx.Ctx.log_len <- 0;
  Hashtbl.reset t.ctx.Ctx.logged

let end_tx t =
  let r = t.ctx.Ctx.r in
  (* make all in-place stores durable, then retire the log *)
  Pmem.Region.pfence r;
  Pmem.Region.psync r;
  Pmem.Region.store r o_log_count 0;
  Pmem.Region.pwb r o_log_count;
  Pmem.Region.pfence r;
  t.ctx.Ctx.in_tx <- false;
  t.ctx.Ctx.log_len <- 0;
  Hashtbl.reset t.ctx.Ctx.logged

(* Abort: undo the in-place stores from the log (PMDK's tx_abort). *)
let abort_tx t =
  rollback t.ctx.Ctx.r ~log_base:t.ctx.Ctx.log_base
    ~log_capacity:t.ctx.Ctx.log_capacity;
  t.ctx.Ctx.in_tx <- false;
  t.ctx.Ctx.log_len <- 0;
  Hashtbl.reset t.ctx.Ctx.logged

let in_update_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let read_depth_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let update_tx t f =
  if Domain.DLS.get in_update_key then f ()
  else
    Rwlock_rp.with_write_lock t.lock (fun () ->
        Domain.DLS.set in_update_key true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set in_update_key false)
          (fun () ->
            begin_tx t;
            match f () with
            | v ->
              end_tx t;
              v
            | exception e ->
              let backtrace = Printexc.get_backtrace () in
              (match e with
               | Pmem.Region.Crash_point -> raise e (* machine is dead *)
               | _ ->
                 abort_tx t;
                 let st = Pmem.Region.stats t.ctx.Ctx.r in
                 st.Pmem.Stats.tx_aborts <- st.Pmem.Stats.tx_aborts + 1;
                 (match e with
                  | Romulus.Engine.Tx_aborted _ -> raise e
                  | _ ->
                    raise
                      (Romulus.Engine.Tx_aborted { cause = e; backtrace })))))

let read_tx t f =
  if Domain.DLS.get in_update_key || Domain.DLS.get read_depth_key > 0 then
    f ()
  else begin
    Domain.DLS.set read_depth_key 1;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set read_depth_key 0)
      (fun () -> Rwlock_rp.with_read_lock t.lock f)
  end

(* ---- accesses ---- *)

let load t off = Pmem.Region.load t.ctx.Ctx.r off
let load_bytes t off len = Pmem.Region.load_bytes t.ctx.Ctx.r off len

(* A domain inside a read-only transaction must never store, even while
   a writer elsewhere has the shared context's [in_tx] set. *)
let check_not_read_only () =
  if Domain.DLS.get read_depth_key > 0
     && not (Domain.DLS.get in_update_key) then
    raise Romulus.Engine.Store_outside_transaction

let store t off v =
  check_not_read_only ();
  Ctx.store t.ctx off v;
  let s = Pmem.Region.stats t.ctx.Ctx.r in
  s.Pmem.Stats.user_bytes <- s.Pmem.Stats.user_bytes + 8

let store_bytes t off str =
  check_not_read_only ();
  let c = t.ctx in
  if not c.Ctx.in_tx then raise Romulus.Engine.Store_outside_transaction;
  (* snapshot the covered words, then store the blob in place *)
  let len = String.length str in
  let first = off land lnot 7 in
  let last = (off + len + 7) land lnot 7 in
  let a = ref first in
  while !a < last do
    Ctx.log_old_value c !a;
    a := !a + 8
  done;
  Pmem.Region.store_bytes c.Ctx.r off str;
  Pmem.Region.pwb_range c.Ctx.r off len;
  let s = Pmem.Region.stats c.Ctx.r in
  s.Pmem.Stats.user_bytes <- s.Pmem.Stats.user_bytes + len

let alloc t n =
  check_not_read_only ();
  if not t.ctx.Ctx.in_tx then
    raise Romulus.Engine.Store_outside_transaction;
  Alloc.alloc t.arena n

let free t p =
  check_not_read_only ();
  if not t.ctx.Ctx.in_tx then
    raise Romulus.Engine.Store_outside_transaction;
  Alloc.free t.arena p

let root_addr i =
  if i < 0 || i >= Romulus.Ptm_intf.root_slots then
    raise (Romulus.Engine.Root_out_of_bounds i);
  header_bytes + (8 * i)

let get_root t i = Pmem.Region.load t.ctx.Ctx.r (root_addr i)

let set_root t i v =
  check_not_read_only ();
  Ctx.store t.ctx (root_addr i) v

(* Detection-only media scrub: an undo-log region keeps a single copy of
   every line, so a sidecar CRC miss has no twin to repair from — it is
   always [Romulus.Engine.Unrepairable] (state "none").  The walk covers
   the header, roots and used arena span. *)
let media_frontier t =
  let arena_base, _, _ = layout t.ctx.Ctx.r in
  arena_base + Alloc.used_bytes t.arena

let scrub_with ~salvage t =
  if t.ctx.Ctx.in_tx then invalid_arg "Undolog.scrub: transaction in progress";
  let r = t.ctx.Ctx.r in
  let stats = Pmem.Region.stats r in
  let line = Pmem.Region.line_size r in
  let last = (media_frontier t - 1) / line in
  let scrubbed = ref 0 in
  let lost = ref [] in
  for l = 0 to last do
    incr scrubbed;
    stats.Pmem.Stats.scrubbed_lines <- stats.Pmem.Stats.scrubbed_lines + 1;
    if Pmem.Region.line_is_clean r ~line:l
       && not (Pmem.Region.media_ok r ~line:l)
    then begin
      stats.Pmem.Stats.unrepairable_lines <-
        stats.Pmem.Stats.unrepairable_lines + 1;
      (* single copy: never repairable.  Salvage mode records the loss
         and keeps walking — a later read of the line still raises
         [Media_error], so nothing is silently blessed. *)
      if salvage then lost := (l * line, "none") :: !lost
      else
        raise
          (Romulus.Engine.Unrepairable { offset = l * line; state = "none" })
    end
  done;
  { Romulus.Engine.scrubbed = !scrubbed; repaired = 0;
    unrepairable = List.rev !lost }

let scrub t = scrub_with ~salvage:false t
let scrub_salvage t = scrub_with ~salvage:true t

let recover_salvage t =
  (* Post-crash entry point: a crash inside [update_tx] leaves the shared
     context's volatile [in_tx] flag set (the machine died mid-transaction,
     so there was no abort to clear it).  The scrub guard below would
     mistake that stale flag for a live writer, so reset it first — the
     recovery rollback that follows is what actually settles the log. *)
  t.ctx.Ctx.in_tx <- false;
  let report = scrub_with ~salvage:true t in
  recover t;
  report.Romulus.Engine.unrepairable

let media_spans t = [ (0, media_frontier t) ]

(* test hook *)
let allocator_check t = Alloc.check t.arena
