(* Mnemosyne-like PTM (§2, §6.1): durable transactions built on a
   TinySTM/TL2-style STM with a redo log persisted at commit time.

   - Loads are interposed: a load first searches the transaction's write
     set for a buffered value (the cost the paper attributes to
     Mnemosyne's large transactions), then validates the stripe version.
   - Stores are buffered (word write set + blob write set); persistent
     memory is only modified at commit.
   - Commit persists redo records — one 64-byte slot per modified word
     (address, value, version, pad), modelling Mnemosyne's 8-word log
     entries and their write amplification; blobs are logged as a header
     slot plus raw data slots — then a commit marker, then performs the
     in-place write-back, then retires the log: 4 persistence fences per
     update transaction ("4 or more", Table 1).
   - Conflicts abort and re-execute the transaction closure, so closures
     must be re-executable (the fine-grained conflict behaviour is what
     makes the shared-counter hash map collapse in Figure 5).

   The allocator runs inside transactions: its metadata loads/stores go
   through the write set, so an aborted transaction simply discards its
   allocations, and a crash recovers to the last committed state.

   Region layout:

     0        magic
     8        log_commit   commit version of a log awaiting replay (0 = none)
     16       log_count    slots used in the log
     64       roots
     64+512   allocator arena ...
     size-L   redo log slots (64-byte stride)

   Write amplification and fence counts are measured by the shared region
   instrumentation, so Table 1 is reproduced from live counters. *)

open Sync_prims

let name = "mne"

let magic_value = 0x4D4E454D4F53 (* "MNEMOS" *)

(* Failpoint: the commit marker is durable but the in-place write-back
   has not happened — recovery must replay the whole log. *)
let fp_marker_durable = Fault.site "mne.commit.marker_durable"

(* Failpoint: every write-set stripe is locked and the read set has
   validated, but nothing durable has happened — an injected exception
   here must release every stripe and abort the transaction cleanly. *)
let fp_locks_acquired = Fault.site ~can_raise:true "mne.commit.locks_acquired"

let o_magic = 0
let o_log_commit = 8
let o_log_count = 16
let header_bytes = 64
let roots_bytes = 8 * Romulus.Ptm_intf.root_slots
let slot_bytes = 64

let tag_word = 0
let tag_blob = 1

exception Log_full

module Shared = struct
  type ctx = {
    mutable active : bool;
    mutable read_only : bool;
    mutable rv : int;
    mutable rs : int array;      (* stripe indices read *)
    mutable rs_n : int;
    mutable ws_addr : int array;
    mutable ws_val : int array;
    mutable ws_n : int;
    ws_index : (int, int) Hashtbl.t; (* addr -> write-set slot *)
    mutable blob_addr : int array;
    mutable blob_data : string array;
    mutable blob_n : int;
  }

  type t = {
    r : Pmem.Region.t;
    stm : Tinystm.t;
    ctxs : ctx option array;
    log_base : int;
    log_capacity : int; (* in 64-byte slots *)
    commit_lock : Spinlock.t;
  }

  let new_ctx () =
    { active = false; read_only = false; rv = 0;
      rs = Array.make 64 0; rs_n = 0;
      ws_addr = Array.make 64 0; ws_val = Array.make 64 0; ws_n = 0;
      ws_index = Hashtbl.create 64;
      blob_addr = Array.make 8 0; blob_data = Array.make 8 ""; blob_n = 0 }

  let ctx s =
    let tid = Tid.current () in
    match s.ctxs.(tid) with
    | Some c -> c
    | None ->
      let c = new_ctx () in
      s.ctxs.(tid) <- Some c;
      c

  let reset_ctx c ~read_only ~rv =
    c.active <- true;
    c.read_only <- read_only;
    c.rv <- rv;
    c.rs_n <- 0;
    c.ws_n <- 0;
    c.blob_n <- 0;
    Hashtbl.reset c.ws_index

  let push_read c idx =
    if c.rs_n = Array.length c.rs then begin
      let bigger = Array.make (2 * c.rs_n) 0 in
      Array.blit c.rs 0 bigger 0 c.rs_n;
      c.rs <- bigger
    end;
    c.rs.(c.rs_n) <- idx;
    c.rs_n <- c.rs_n + 1

  let push_write c addr v =
    match Hashtbl.find_opt c.ws_index addr with
    | Some slot -> c.ws_val.(slot) <- v
    | None ->
      if c.ws_n = Array.length c.ws_addr then begin
        let cap = 2 * c.ws_n in
        let a = Array.make cap 0 and b = Array.make cap 0 in
        Array.blit c.ws_addr 0 a 0 c.ws_n;
        Array.blit c.ws_val 0 b 0 c.ws_n;
        c.ws_addr <- a;
        c.ws_val <- b
      end;
      c.ws_addr.(c.ws_n) <- addr;
      c.ws_val.(c.ws_n) <- v;
      Hashtbl.replace c.ws_index addr c.ws_n;
      c.ws_n <- c.ws_n + 1

  let push_blob c addr data =
    if c.blob_n = Array.length c.blob_addr then begin
      let cap = 2 * c.blob_n in
      let a = Array.make cap 0 and d = Array.make cap "" in
      Array.blit c.blob_addr 0 a 0 c.blob_n;
      Array.blit c.blob_data 0 d 0 c.blob_n;
      c.blob_addr <- a;
      c.blob_data <- d
    end;
    c.blob_addr.(c.blob_n) <- addr;
    c.blob_data.(c.blob_n) <- data;
    c.blob_n <- c.blob_n + 1

  (* sample a stripe, abort if locked *)
  let sample s idx =
    let w = Tinystm.read_word s.stm idx in
    if Tinystm.is_locked w then raise Tinystm.Abort;
    w

  (* transactional load with TL2 pre/post validation *)
  let load s off =
    let c = ctx s in
    if not c.active then Pmem.Region.load s.r off
    else
      match Hashtbl.find_opt c.ws_index off with
      | Some slot -> c.ws_val.(slot)
      | None ->
        let idx = Tinystm.stripe s.stm off in
        let l1 = sample s idx in
        let v = Pmem.Region.load s.r off in
        let l2 = Tinystm.read_word s.stm idx in
        if l1 <> l2 || Tinystm.version l1 > c.rv then raise Tinystm.Abort;
        push_read c idx;
        v

  let store s off v =
    let c = ctx s in
    if not c.active || c.read_only then
      raise Romulus.Engine.Store_outside_transaction;
    push_write c off v

  (* words covered by a byte range *)
  let range_words off len =
    let first = off land lnot 7 in
    let last = (off + len + 7) land lnot 7 in
    (first, last)

  let store_blob s off data =
    let c = ctx s in
    if not c.active || c.read_only then
      raise Romulus.Engine.Store_outside_transaction;
    if String.length data > 0 then push_blob c off data

  (* Transactional blob load: validated snapshot of the underlying range,
     overlaid with buffered word and blob writes (read-your-writes). *)
  let load_blob s off len =
    let c = ctx s in
    if not c.active then Pmem.Region.load_bytes s.r off len
    else begin
      let first, last = range_words off len in
      (* collect the distinct stripes covering the range *)
      let stripes = ref [] in
      let a = ref first in
      while !a < last do
        let idx = Tinystm.stripe s.stm !a in
        if not (List.mem idx !stripes) then stripes := idx :: !stripes;
        a := !a + 8
      done;
      let l1s = List.map (fun idx -> (idx, sample s idx)) !stripes in
      let bytes = Bytes.of_string (Pmem.Region.load_bytes s.r first (last - first)) in
      List.iter
        (fun (idx, l1) ->
          let l2 = Tinystm.read_word s.stm idx in
          if l1 <> l2 || Tinystm.version l1 > c.rv then raise Tinystm.Abort;
          push_read c idx)
        l1s;
      (* overlay buffered word writes *)
      let a = ref first in
      while !a < last do
        (match Hashtbl.find_opt c.ws_index !a with
         | Some slot ->
           Bytes.set_int64_le bytes (!a - first)
             (Int64.of_int c.ws_val.(slot))
         | None -> ());
        a := !a + 8
      done;
      (* overlay buffered blob writes, in program order *)
      for i = 0 to c.blob_n - 1 do
        let baddr = c.blob_addr.(i) in
        let bdata = c.blob_data.(i) in
        let blen = String.length bdata in
        let lo = max baddr first and hi = min (baddr + blen) last in
        if lo < hi then
          Bytes.blit_string bdata (lo - baddr) bytes (lo - first) (hi - lo)
      done;
      Bytes.sub_string bytes (off - first) len
    end

  (* ---- commit ---- *)

  let slot_addr s i = s.log_base + (i * slot_bytes)

  let slots_for_blob len = 1 + ((len + slot_bytes - 1) / slot_bytes)

  (* Persist the redo records and the commit marker (2 fences). *)
  let persist_redo_log s c wv =
    let needed =
      c.ws_n
      + Array.fold_left ( + ) 0
          (Array.init c.blob_n (fun i ->
               slots_for_blob (String.length c.blob_data.(i))))
    in
    if needed > s.log_capacity then raise Log_full;
    let slot = ref 0 in
    for i = 0 to c.ws_n - 1 do
      let e = slot_addr s !slot in
      Pmem.Region.store s.r e tag_word;
      Pmem.Region.store s.r (e + 8) c.ws_addr.(i);
      Pmem.Region.store s.r (e + 16) c.ws_val.(i);
      Pmem.Region.store s.r (e + 24) wv;
      Pmem.Region.pwb_range s.r e 32;
      incr slot
    done;
    for i = 0 to c.blob_n - 1 do
      let data = c.blob_data.(i) in
      let len = String.length data in
      let e = slot_addr s !slot in
      Pmem.Region.store s.r e tag_blob;
      Pmem.Region.store s.r (e + 8) c.blob_addr.(i);
      Pmem.Region.store s.r (e + 16) len;
      Pmem.Region.store s.r (e + 24) wv;
      Pmem.Region.store_bytes s.r (e + slot_bytes) data;
      Pmem.Region.pwb_range s.r e (slot_bytes + len);
      slot := !slot + slots_for_blob len
    done;
    Pmem.Region.store s.r o_log_count !slot;
    Pmem.Region.pwb s.r o_log_count;
    Pmem.Region.pfence s.r;
    Pmem.Region.store s.r o_log_commit wv;
    Pmem.Region.pwb s.r o_log_commit;
    Pmem.Region.pfence s.r;
    Fault.hit fp_marker_durable

  let write_back s c =
    for i = 0 to c.ws_n - 1 do
      Pmem.Region.store s.r c.ws_addr.(i) c.ws_val.(i);
      Pmem.Region.pwb s.r c.ws_addr.(i)
    done;
    let blob_bytes = ref 0 in
    for i = 0 to c.blob_n - 1 do
      let data = c.blob_data.(i) in
      Pmem.Region.store_bytes s.r c.blob_addr.(i) data;
      Pmem.Region.pwb_range s.r c.blob_addr.(i) (String.length data);
      blob_bytes := !blob_bytes + String.length data
    done;
    let st = Pmem.Region.stats s.r in
    st.Pmem.Stats.user_bytes <-
      st.Pmem.Stats.user_bytes + (8 * c.ws_n) + !blob_bytes

  let retire_log s =
    Pmem.Region.pfence s.r;
    Pmem.Region.store s.r o_log_commit 0;
    Pmem.Region.pwb s.r o_log_commit;
    Pmem.Region.pfence s.r

  let commit s c =
    if c.ws_n = 0 && c.blob_n = 0 then ()
    else begin
      (* acquire write locks (word and blob stripes); abort wholesale on
         any conflict *)
      let acquired = Hashtbl.create 16 in (* stripe -> prev version *)
      let release_all () =
        Hashtbl.iter
          (fun idx prev ->
            Tinystm.release_unchanged s.stm idx ~prev_version:prev)
          acquired
      in
      let abort () =
        release_all ();
        raise Tinystm.Abort
      in
      let acquire idx =
        if not (Hashtbl.mem acquired idx) then
          match Tinystm.try_acquire s.stm idx with
          | Some prev -> Hashtbl.replace acquired idx prev
          | None -> abort ()
      in
      for i = 0 to c.ws_n - 1 do
        acquire (Tinystm.stripe s.stm c.ws_addr.(i))
      done;
      for i = 0 to c.blob_n - 1 do
        let first, last = range_words c.blob_addr.(i)
            (String.length c.blob_data.(i)) in
        let a = ref first in
        while !a < last do
          acquire (Tinystm.stripe s.stm !a);
          a := !a + 8
        done
      done;
      let wv = Tinystm.next_version s.stm in
      (* validate the read set *)
      for i = 0 to c.rs_n - 1 do
        let idx = c.rs.(i) in
        match Hashtbl.find_opt acquired idx with
        | Some prev -> if prev > c.rv then abort ()
        | None ->
          let w = Tinystm.read_word s.stm idx in
          if Tinystm.is_locked w || Tinystm.version w > c.rv then abort ()
      done;
      (* From here on, any escaping exception — Log_full, an injected
         fault, a simulated crash — must release the acquired stripes, or
         they stay locked forever and every later transaction touching
         them livelocks.  Before the commit marker is durable nothing has
         been published, so releasing with the previous versions is a
         clean abort; after it, only a crash can raise, and a dead region
         fails every subsequent access anyway. *)
      (try
         Fault.hit fp_locks_acquired;
         (* durable phase, serialized over the shared log *)
         Spinlock.lock s.commit_lock;
         Fun.protect
           ~finally:(fun () -> Spinlock.unlock s.commit_lock)
           (fun () ->
             persist_redo_log s c wv;
             write_back s c;
             retire_log s)
       with e ->
         release_all ();
         raise e);
      Hashtbl.iter (fun idx _ -> Tinystm.release s.stm idx ~ver:wv) acquired
    end
end

module Alloc = Palloc.Make (Shared)

type t = {
  s : Shared.t;
  arena : Alloc.t;
}

let region t = t.s.Shared.r

(* ---- recovery ---- *)

let recovery_error fmt =
  Printf.ksprintf (fun s -> raise (Romulus.Engine.Recovery_error s)) fmt

(* Validate the whole committed log before replaying any of it: slots and
   the count are fenced strictly before the commit marker, so a marker
   with a count outside the log, a slot with an unknown tag, or a record
   addressing bytes outside the region can only mean media corruption —
   replaying it would spray garbage over committed data. *)
let validate_log r ~log_base ~log_capacity =
  let size = Pmem.Region.size r in
  let count = Pmem.Region.load r o_log_count in
  if count < 0 || count > log_capacity then
    recovery_error "Redolog.recover: log count %d outside [0, %d]" count
      log_capacity;
  let i = ref 0 in
  while !i < count do
    let e = log_base + (!i * slot_bytes) in
    let tag = Pmem.Region.load r e in
    let addr = Pmem.Region.load r (e + 8) in
    if tag = tag_word then begin
      if addr < 0 || addr > size - 8 then
        recovery_error
          "Redolog.recover: word slot %d addresses %d outside region of %d \
           bytes"
          !i addr size;
      incr i
    end
    else if tag = tag_blob then begin
      let len = Pmem.Region.load r (e + 16) in
      if len < 0 || addr < 0 || addr + len > size then
        recovery_error
          "Redolog.recover: blob slot %d covers [%d, %d) outside region of \
           %d bytes"
          !i addr (addr + len) size;
      let span = 1 + ((len + slot_bytes - 1) / slot_bytes) in
      if !i + span > count then
        recovery_error
          "Redolog.recover: blob slot %d spans %d slots past the count %d"
          !i span count;
      i := !i + span
    end
    else recovery_error "Redolog.recover: slot %d has unknown tag %d" !i tag
  done;
  count

let replay r ~log_base ~log_capacity =
  if Pmem.Region.load r o_log_commit <> 0 then begin
    let count = validate_log r ~log_base ~log_capacity in
    let i = ref 0 in
    while !i < count do
      let e = log_base + (!i * slot_bytes) in
      let tag = Pmem.Region.load r e in
      let addr = Pmem.Region.load r (e + 8) in
      if tag = tag_word then begin
        let v = Pmem.Region.load r (e + 16) in
        Pmem.Region.store r addr v;
        Pmem.Region.pwb r addr;
        incr i
      end
      else begin
        let len = Pmem.Region.load r (e + 16) in
        let data = Pmem.Region.load_bytes r (e + slot_bytes) len in
        Pmem.Region.store_bytes r addr data;
        Pmem.Region.pwb_range r addr len;
        i := !i + 1 + ((len + slot_bytes - 1) / slot_bytes)
      end
    done;
    Pmem.Region.pfence r;
    Pmem.Region.store r o_log_commit 0;
    Pmem.Region.pwb r o_log_commit;
    Pmem.Region.pfence r
  end

(* ---- open/format ---- *)

let layout r =
  let size = Pmem.Region.size r in
  let log_bytes = max 8192 (size / 8) in
  let log_base = size - log_bytes in
  let arena_base = header_bytes + roots_bytes in
  if log_base - arena_base < Palloc.meta_bytes + 4096 then
    invalid_arg "Redolog: region too small";
  (arena_base, log_base, log_bytes / slot_bytes)

let open_region r =
  let arena_base, log_base, log_capacity = layout r in
  let s =
    { Shared.r;
      stm = Tinystm.create ();
      ctxs = Array.make Tid.max_threads None;
      log_base;
      log_capacity;
      commit_lock = Spinlock.create () }
  in
  let magic = Pmem.Region.load r o_magic in
  if magic <> 0 && magic <> magic_value then
    recovery_error "Redolog.open: unrecognized magic %#x" magic;
  if magic = magic_value then begin
    replay r ~log_base ~log_capacity;
    { s; arena = Alloc.attach s ~base:arena_base }
  end
  else begin
    (* format: buffer the initialization in a context, then materialize it
       with direct stores (single-threaded by contract) *)
    let c = Shared.ctx s in
    Shared.reset_ctx c ~read_only:false ~rv:max_int;
    let arena = Alloc.init s ~base:arena_base ~size:(log_base - arena_base) in
    for i = 0 to c.Shared.ws_n - 1 do
      Pmem.Region.store r c.Shared.ws_addr.(i) c.Shared.ws_val.(i);
      Pmem.Region.pwb r c.Shared.ws_addr.(i)
    done;
    c.Shared.active <- false;
    Pmem.Region.store r o_log_commit 0;
    Pmem.Region.store r o_log_count 0;
    Pmem.Region.pwb_range r 0 header_bytes;
    Pmem.Region.pfence r;
    Pmem.Region.store r o_magic magic_value;
    Pmem.Region.pwb r o_magic;
    Pmem.Region.pfence r;
    { s; arena }
  end

let recover t =
  (* volatile STM state evaporates with the process: clear contexts,
     stripe locks and the clock *)
  Array.iteri (fun i _ -> t.s.Shared.ctxs.(i) <- None) t.s.Shared.ctxs;
  Tinystm.reset t.s.Shared.stm;
  replay t.s.Shared.r ~log_base:t.s.Shared.log_base
    ~log_capacity:t.s.Shared.log_capacity

(* ---- transactions ---- *)

(* Bounded retry: a conflict storm surfaces as a typed
   Tinystm.Contention_exhausted after this many consecutive aborts,
   instead of an unbounded spin. *)
let max_attempts = 4096

(* Exponential backoff with deterministic per-(thread, attempt) jitter,
   so symmetric threads do not lock-step through identical retry
   schedules and re-collide forever. *)
let backoff n =
  let mix z =
    let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
    let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
    z lxor (z lsr 31)
  in
  let jitter =
    mix ((Tid.current () * 0x2545F4914F6CDD1D) + n) land 127
  in
  for _ = 1 to min 2048 (1 lsl min n 10) + jitter do
    Domain.cpu_relax ()
  done

let update_tx t f =
  let c = Shared.ctx t.s in
  if c.Shared.active then f ()
  else begin
    let rec attempt n =
      if n > max_attempts then
        raise (Tinystm.Contention_exhausted { attempts = max_attempts });
      Shared.reset_ctx c ~read_only:false ~rv:(Tinystm.now t.s.Shared.stm);
      match
        let v = f () in
        Shared.commit t.s c;
        v
      with
      | v ->
        c.Shared.active <- false;
        v
      | exception Tinystm.Abort ->
        c.Shared.active <- false;
        (* a writer that died mid-commit leaves stripes locked: on a dead
           machine, report the crash instead of retrying forever *)
        if Pmem.Region.is_dead t.s.Shared.r then
          raise Pmem.Region.Crash_point;
        Tinystm.record_abort t.s.Shared.stm;
        backoff n;
        attempt (n + 1)
      | exception e ->
        (* transaction failed for a non-conflict reason — user exception,
           log overflow, injected fault: the buffered writes are
           discarded and the typed abort reports the cause *)
        c.Shared.active <- false;
        let st = Pmem.Region.stats t.s.Shared.r in
        st.Pmem.Stats.tx_aborts <- st.Pmem.Stats.tx_aborts + 1;
        (match e with
         | Pmem.Region.Crash_point | Romulus.Engine.Tx_aborted _ -> raise e
         | _ ->
           raise
             (Romulus.Engine.Tx_aborted
                { cause = e; backtrace = Printexc.get_backtrace () }))
    in
    attempt 1
  end

let read_tx t f =
  let c = Shared.ctx t.s in
  if c.Shared.active then f ()
  else begin
    let rec attempt n =
      if n > max_attempts then
        raise (Tinystm.Contention_exhausted { attempts = max_attempts });
      Shared.reset_ctx c ~read_only:true ~rv:(Tinystm.now t.s.Shared.stm);
      match f () with
      | v ->
        c.Shared.active <- false;
        v
      | exception Tinystm.Abort ->
        c.Shared.active <- false;
        (* a writer that died mid-commit leaves stripes locked: on a dead
           machine, report the crash instead of retrying forever *)
        if Pmem.Region.is_dead t.s.Shared.r then
          raise Pmem.Region.Crash_point;
        Tinystm.record_abort t.s.Shared.stm;
        backoff n;
        attempt (n + 1)
      | exception e ->
        c.Shared.active <- false;
        raise e
    in
    attempt 1
  end

(* ---- accesses ---- *)

let load t off = Shared.load t.s off
let store t off v = Shared.store t.s off v
let load_bytes t off len = Shared.load_blob t.s off len
let store_bytes t off str = Shared.store_blob t.s off str

let alloc t n = Alloc.alloc t.arena n
let free t p = Alloc.free t.arena p

let root_addr i =
  if i < 0 || i >= Romulus.Ptm_intf.root_slots then
    raise (Romulus.Engine.Root_out_of_bounds i);
  header_bytes + (8 * i)

let get_root t i = Shared.load t.s (root_addr i)
let set_root t i v = Shared.store t.s (root_addr i) v

(* Detection-only media scrub: the redo-log region too keeps a single
   copy of every line — a sidecar CRC miss is always
   [Romulus.Engine.Unrepairable] (state "none").  The walk covers the
   header, roots and used arena span. *)
let media_frontier t =
  let arena_base, _, _ = layout t.s.Shared.r in
  arena_base + Alloc.used_bytes t.arena

let scrub_with ~salvage t =
  let r = t.s.Shared.r in
  let stats = Pmem.Region.stats r in
  let line = Pmem.Region.line_size r in
  let last = (media_frontier t - 1) / line in
  let scrubbed = ref 0 in
  let lost = ref [] in
  for l = 0 to last do
    incr scrubbed;
    stats.Pmem.Stats.scrubbed_lines <- stats.Pmem.Stats.scrubbed_lines + 1;
    if Pmem.Region.line_is_clean r ~line:l
       && not (Pmem.Region.media_ok r ~line:l)
    then begin
      stats.Pmem.Stats.unrepairable_lines <-
        stats.Pmem.Stats.unrepairable_lines + 1;
      (* single copy: never repairable.  Salvage mode records the loss
         and keeps walking — a later read of the line still raises
         [Media_error], so nothing is silently blessed. *)
      if salvage then lost := (l * line, "none") :: !lost
      else
        raise
          (Romulus.Engine.Unrepairable { offset = l * line; state = "none" })
    end
  done;
  { Romulus.Engine.scrubbed = !scrubbed; repaired = 0;
    unrepairable = List.rev !lost }

let scrub t = scrub_with ~salvage:false t
let scrub_salvage t = scrub_with ~salvage:true t

let recover_salvage t =
  let report = scrub_with ~salvage:true t in
  recover t;
  report.Romulus.Engine.unrepairable

let media_spans t = [ (0, media_frontier t) ]

(* test hooks *)
let allocator_check t = Alloc.check t.arena
let aborts t = Tinystm.aborts t.s.Shared.stm
let stm t = t.s.Shared.stm
