(** Mnemosyne-like PTM: TinySTM/TL2-style optimistic concurrency with a
    persistent redo log written at commit (4 fences per update
    transaction, 64-byte log records, load interposition through the
    write set).  Conflicting transactions abort and re-execute their
    closure, so closures must be re-executable. *)

include Romulus.Ptm_intf.S

(** Raised when a transaction overflows the persistent redo log.  The
    transaction aborts cleanly (stripes released, buffered writes
    discarded) and the exception reaches the caller wrapped in
    [Romulus.Engine.Tx_aborted]; after {!Tinystm.Contention_exhausted}
    many consecutive conflict aborts the typed exhaustion error is
    raised raw instead of retrying forever. *)
exception Log_full

(** Re-run crash recovery (replay a committed log, reset volatile STM
    state). *)
val recover : t -> unit

(** Detection-only media scrub: verify per-line sidecar CRCs over the
    used span.  No twin copy exists, so any CRC miss raises
    [Romulus.Engine.Unrepairable] with state ["none"].  *)
val scrub : t -> Romulus.Engine.scrub_report

(** Salvage-mode scrub: collect every CRC miss (offset, ["none"]) into
    [unrepairable] instead of raising on the first.  Reads of a lost
    line still raise [Pmem.Region.Media_error]. *)
val scrub_salvage : t -> Romulus.Engine.scrub_report

(** Salvage scrub followed by {!recover}; returns the lost lines.  The
    replay itself may still raise [Pmem.Region.Media_error] if the log
    area is damaged. *)
val recover_salvage : t -> (int * string) list

(** Fault-campaign target range: the single used span. *)
val media_spans : t -> (int * int) list

(** Structural check of the persistent allocator. *)
val allocator_check : t -> (unit, string) result

(** Aborts observed so far (indicative; racy under domains). *)
val aborts : t -> int

(** The underlying STM (test hook: lets a contention test pin a stripe
    lock from outside any transaction). *)
val stm : t -> Tinystm.t
