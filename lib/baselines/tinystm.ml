(* TinySTM/TL2-style software transactional memory mechanics: a global
   version clock and a table of versioned write-locks striped over
   persistent-memory addresses.  Mnemosyne builds its durable transactions
   on TinySTM (§2); {!Redolog} composes this module with a persistent redo
   log the same way.

   A lock word encodes [version lsl 1 lor locked].  Readers sample the
   word before and after the data load and abort on any intervening change
   or on a version newer than their read timestamp. *)

exception Abort

(* The bounded-retry loops of the STM-based PTMs give up with this after
   exhausting their attempt budget: a typed, recoverable signal that the
   workload is livelocked, instead of spinning forever. *)
exception Contention_exhausted of { attempts : int }

type t = {
  clock : int Atomic.t;
  locks : int Atomic.t array;
  mask : int;
  mutable aborts : int; (* stats; racy, indicative only *)
}

let default_bits = 16

let create ?(bits = default_bits) () =
  let n = 1 lsl bits in
  { clock = Atomic.make 0;
    locks = Array.init n (fun _ -> Atomic.make 0);
    mask = n - 1;
    aborts = 0 }

(* Fibonacci-hash the word address onto a stripe. *)
let stripe t addr = (addr lsr 3) * 0x2545F4914F6CDD1D land t.mask

let now t = Atomic.get t.clock

let next_version t = Atomic.fetch_and_add t.clock 1 + 1

let read_word t idx = Atomic.get t.locks.(idx)

let is_locked word = word land 1 = 1

let version word = word asr 1

(* Try to lock stripe [idx]; returns the pre-lock version on success. *)
let try_acquire t idx =
  let w = Atomic.get t.locks.(idx) in
  if is_locked w then None
  else if Atomic.compare_and_set t.locks.(idx) w (w lor 1) then
    Some (version w)
  else None

(* Release a stripe, publishing [ver] as its new version. *)
let release t idx ~ver = Atomic.set t.locks.(idx) (ver lsl 1)

(* Release a stripe without changing its version (abort path). *)
let release_unchanged t idx ~prev_version =
  Atomic.set t.locks.(idx) (prev_version lsl 1)

let record_abort t = t.aborts <- t.aborts + 1

let aborts t = t.aborts

(* Forget all volatile state (simulated process restart). *)
let reset t =
  Atomic.set t.clock 0;
  Array.iter (fun l -> Atomic.set l 0) t.locks;
  t.aborts <- 0
