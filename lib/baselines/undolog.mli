(** Undo-log PTM in the style of PMDK's libpmemobj: old values are
    persisted to a write-ahead undo log before each first in-place store
    (2 fences per logged store), transactions retire the log at commit,
    and recovery applies the log backwards.  Concurrency: a global
    reader-preference reader-writer lock, as in the paper's evaluation
    setup for PMDK (§6.1). *)

include Romulus.Ptm_intf.S

(** Raised when a transaction overflows the persistent undo log.  The
    transaction aborts cleanly (in-place stores undone from the entries
    logged so far) and the exception reaches the caller wrapped in
    [Romulus.Engine.Tx_aborted]. *)
exception Log_full

(** Re-run crash recovery (roll back any active log). *)
val recover : t -> unit

(** Detection-only media scrub: verify per-line sidecar CRCs over the
    used span.  No twin copy exists, so any CRC miss raises
    [Romulus.Engine.Unrepairable] with state ["none"].  *)
val scrub : t -> Romulus.Engine.scrub_report

(** Salvage-mode scrub: collect every CRC miss (offset, ["none"]) into
    [unrepairable] instead of raising on the first.  Reads of a lost
    line still raise [Pmem.Region.Media_error]. *)
val scrub_salvage : t -> Romulus.Engine.scrub_report

(** Salvage scrub followed by {!recover}; returns the lost lines.  The
    rollback itself may still raise [Pmem.Region.Media_error] if the log
    area is damaged. *)
val recover_salvage : t -> (int * string) list

(** Fault-campaign target range: the single used span. *)
val media_spans : t -> (int * int) list

(** Structural check of the persistent allocator. *)
val allocator_check : t -> (unit, string) result
