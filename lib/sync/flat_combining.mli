(** Flat-combining array: aggregate update operations under one lock
    acquisition (and, for a PTM, one durable transaction). *)

type t

val create : unit -> t

(** [apply t f ~exec] publishes [f] and returns once some combiner has
    executed it durably.  The combiner calls [exec run_batch] once per
    round; [exec] must call [run_batch ()] (e.g. between
    begin-transaction and end-transaction) and, if [run_batch] raises,
    must discard the attempt's effects (abort the transaction) and let
    the exception — possibly transformed, e.g. wrapped in a typed abort
    error — escape [exec].  The combiner then answers the raising
    request with that exception and retries the remaining requests in a
    fresh [exec] round, so one poisonous request fails alone while the
    rest of the batch still commits.  An [exec] failure outside any
    request (begin/commit machinery, a simulated crash) is raised at
    every requester of the round; no requester is ever left waiting. *)
val apply : t -> (unit -> unit) -> exec:((unit -> unit) -> unit) -> unit

(** [run_rounds pending ~exec ~answer] is the per-round raiser rule of
    {!apply}'s combiner, exposed for layers that coalesce their own
    batches (the group-commit front-end nests whole logical transactions
    inside one engine transaction and needs the identical protocol).
    Each round runs every still-pending [(key, request)] inside one
    [exec] call; on success every key is answered with [None].  If a
    request raises, [exec] must discard the attempt's effects and let
    the exception escape: the raiser alone is answered with [Some exn]
    and the survivors retry in a fresh [exec] round.  An [exec] failure
    outside any request answers the whole round with [Some exn].
    [answer] is called exactly once per element.  Requests are told
    apart by physical identity of the list cells, so duplicate keys are
    permitted. *)
val run_rounds :
  ('a * (unit -> unit)) list ->
  exec:((unit -> unit) -> unit) ->
  answer:('a -> exn option -> unit) ->
  unit

(** Number of batches executed so far. *)
val batches : t -> int

(** Total requests served across all batches. *)
val requests_served : t -> int

(** Current combiner scan length: 1 + the highest thread slot that ever
    published a request — combiners scan only this prefix of the slot
    array, not all [Tid.max_threads] entries. *)
val scan_length : t -> int

(** Total slots examined across all batches.  A combiner stops its scan
    once it has collected every pending request, so this can be far
    below [batches * scan_length] when the watermark is high but few
    requests are in flight. *)
val slots_scanned : t -> int
