(* Flat combining (Hendler et al.): update operations publish a closure in a
   per-thread array; whichever thread acquires the combiner lock executes
   every published operation in one batch.  The paper couples this with the
   C-RW-WP writer lock so that one writer-lock acquisition (and one durable
   transaction, hence one set of persistence fences) covers a whole batch of
   update transactions (§5.2).

   The batch runner is handed to the caller-supplied [exec] so that the PTM
   can wrap it in begin/end-transaction: requests are only marked done after
   [exec] returns, i.e. after the batch is durably committed — this is what
   gives durable linearizability to the helped operations. *)

type state =
  | Empty
  | Request of (unit -> unit)
  | Done of exn option

type t = {
  slots : state Atomic.t array;
  hi : int Atomic.t;        (* 1 + highest tid that ever published here *)
  (* published-but-not-yet-collected requests.  Incremented before the
     slot is set to [Request] and decremented by the combiner as it
     collects, so it never under-counts the visible requests: a scan may
     stop as soon as it has collected [pending] of them instead of
     walking every empty slot up to the watermark. *)
  pending : int Atomic.t;
  lock : Spinlock.t;
  mutable combines : int;   (* batches executed (stats) *)
  mutable combined : int;   (* total requests executed (stats) *)
  mutable scanned : int;    (* slots examined across all batches (stats) *)
}

let create () =
  { slots = Array.init Tid.max_threads (fun _ -> Atomic.make Empty);
    hi = Atomic.make 0;
    pending = Atomic.make 0;
    lock = Spinlock.create ();
    combines = 0;
    combined = 0;
    scanned = 0 }

(* Rounds: run the pending requests inside one [exec] call.  A request
   that raises must not have its partial effects committed with the rest
   of the batch, so the exception propagates out of [run_all] and [exec]
   is expected to discard the whole attempt (the PTM aborts the
   transaction).  The raiser is then answered with the exception that
   escaped [exec] and the survivors retry in a fresh [exec].  Every
   round removes at least one request, so the loop terminates even when
   every request raises; an [exec] failure with no identifiable raiser
   (begin/commit machinery, e.g. a simulated crash) answers the whole
   batch — no requester is ever left waiting.

   Exported on its own because the group-commit front-end reuses the
   exact same per-round raiser rule one level up: there the "requests"
   are whole logical transactions buffered into one coalesced engine
   transaction, and a poisonous logical tx must likewise fail alone
   while the survivors retry as a new group.  Requests are identified by
   physical identity of the list cells, so keys need not be distinct. *)
let run_rounds pending ~exec ~answer =
  let rec rounds pending =
    match pending with
    | [] -> ()
    | _ ->
      let raiser = ref None in
      let run_all () =
        List.iter (fun ((_, f) as p) -> raiser := Some p; f ()) pending;
        raiser := None
      in
      (match exec run_all with
       | () -> List.iter (fun (k, _) -> answer k None) pending
       | exception e ->
         (match !raiser with
          | None -> List.iter (fun (k, _) -> answer k (Some e)) pending
          | Some ((k, _) as p) ->
            answer k (Some e);
            rounds (List.filter (fun q -> q != p) pending)))
  in
  rounds pending

(* Raise the watermark to cover [tid]; must complete before the request is
   published so that no combiner can read a stale watermark that hides a
   visible request. *)
let rec cover t tid =
  let cur = Atomic.get t.hi in
  if tid >= cur && not (Atomic.compare_and_set t.hi cur (tid + 1)) then
    cover t tid

let combine t ~exec =
  Fun.protect ~finally:(fun () -> Spinlock.unlock t.lock) @@ fun () ->
  (* Only slots below the registration watermark can hold requests, and
     at most [pending] of them do: stop as soon as that many have been
     collected instead of walking the remaining empty slots.  A request
     published after its slot was passed (or after the early exit) is
     simply left for the next batch — its owner self-combines once this
     round releases the lock, exactly as with a full scan. *)
  let limit = Atomic.get t.hi in
  let batch = ref [] in
  let examined = ref 0 in
  let i = ref 0 in
  while !i < limit && Atomic.get t.pending > 0 do
    incr examined;
    (match Atomic.get t.slots.(!i) with
     | Request f ->
       batch := (!i, f) :: !batch;
       Atomic.decr t.pending
     | Empty | Done _ -> ());
    incr i
  done;
  let batch = ref (List.rev !batch) in
  t.scanned <- t.scanned + !examined;
  t.combines <- t.combines + 1;
  t.combined <- t.combined + List.length !batch;
  run_rounds !batch ~exec
    ~answer:(fun i r -> Atomic.set t.slots.(i) (Done r))

let apply t f ~exec =
  let tid = Tid.current () in
  let slot = t.slots.(tid) in
  cover t tid;
  (* incremented before the request becomes visible, so a combiner that
     sees the request has also seen the count (never under-counts) *)
  Atomic.incr t.pending;
  Atomic.set slot (Request f);
  let rec wait () =
    match Atomic.get slot with
    | Done r -> begin
        Atomic.set slot Empty;
        match r with Some e -> raise e | None -> ()
      end
    | Request _ ->
      if Spinlock.try_lock t.lock then combine t ~exec
      else Domain.cpu_relax ();
      wait ()
    | Empty -> assert false (* only the owner resets its slot to Empty *)
  in
  wait ()

let batches t = t.combines
let requests_served t = t.combined
let scan_length t = Atomic.get t.hi
let slots_scanned t = t.scanned
